"""Trainable single-scale grid detector (a mini-YOLO in NumPy).

This is the *learned* counterpart of the classical correlation detector: a
small CNN that divides the input into an S x S grid and predicts, per cell,
``[objectness, dx, dy, log w, log h, class logits...]`` — YOLOv1-style with
a single box per cell.  It exists to make the stage-1 slot fully trainable
end to end (as the paper's YOLOv8-nano is), and is exercised by tests and
the examples; the Table 2 benchmark uses the deterministic correlation
detector for speed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.boxes import nms
from ..eval.metrics import Detection
from ..layers import BatchNorm, Conv2D, ReLU
from ..losses import binary_cross_entropy_with_logits, sigmoid, softmax
from ..model import Sequential
from ..optim import Adam


def _backbone(n_out: int, seed: int) -> Sequential:
    """Three stride-2 conv stages (downsample x8) plus a 1x1 head."""
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(3, 8, kernel=3, stride=2, rng=rng),
            BatchNorm(8),
            ReLU(),
            Conv2D(8, 16, kernel=3, stride=2, rng=rng),
            BatchNorm(16),
            ReLU(),
            Conv2D(16, 32, kernel=3, stride=2, rng=rng),
            BatchNorm(32),
            ReLU(),
            Conv2D(32, n_out, kernel=1, stride=1, pad=0, rng=rng),
        ]
    )


@dataclass
class GridDetectorConfig:
    """Hyper-parameters of the grid detector.

    Attributes:
        input_hw: training/inference input ``(height, width)``; both must be
            divisible by the stride (8).
        classes: class labels.
        score_threshold: objectness cutoff at decode time.
        nms_iou: decode-time NMS threshold.
        lambda_box: box-loss weight.
        lambda_noobj: negative-cell objectness weight.
    """

    input_hw: tuple[int, int]
    classes: tuple[str, ...]
    score_threshold: float = 0.35
    nms_iou: float = 0.45
    lambda_box: float = 5.0
    lambda_noobj: float = 0.3


class GridDetector:
    """Single-box-per-cell grid detector with built-in training loop."""

    STRIDE = 8

    def __init__(self, config: GridDetectorConfig, seed: int = 0):
        h, w = config.input_hw
        if h % self.STRIDE or w % self.STRIDE:
            raise ValueError(f"input dims must divide {self.STRIDE}")
        self.config = config
        self.grid_h = h // self.STRIDE
        self.grid_w = w // self.STRIDE
        self.n_classes = len(config.classes)
        self.net = _backbone(5 + self.n_classes, seed)

    # -- targets ---------------------------------------------------------------------

    def encode_targets(self, annotations: list) -> np.ndarray:
        """Build the ``(gh, gw, 5+C)`` target tensor for one image.

        Each GT box is assigned to the cell containing its center; later
        boxes overwrite earlier ones in the rare collision case.
        """
        target = np.zeros((self.grid_h, self.grid_w, 5 + self.n_classes))
        for gt in annotations:
            x, y, w, h = gt.xywh
            if w <= 0 or h <= 0:
                continue
            cx, cy = x + w / 2.0, y + h / 2.0
            gx = int(cx / self.STRIDE)
            gy = int(cy / self.STRIDE)
            if not (0 <= gx < self.grid_w and 0 <= gy < self.grid_h):
                continue
            try:
                cls = self.config.classes.index(gt.label)
            except ValueError:
                continue
            target[gy, gx, 0] = 1.0
            target[gy, gx, 1] = cx / self.STRIDE - gx
            target[gy, gx, 2] = cy / self.STRIDE - gy
            target[gy, gx, 3] = np.log(max(w, 1.0))
            target[gy, gx, 4] = np.log(max(h, 1.0))
            target[gy, gx, 5:] = 0.0
            target[gy, gx, 5 + cls] = 1.0
        return target

    # -- loss --------------------------------------------------------------------------

    def loss_and_grad(
        self, preds: np.ndarray, targets: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """YOLOv1-style composite loss on raw head outputs.

        Args:
            preds: ``(N, gh, gw, 5+C)`` raw network output.
            targets: matching target tensor from :meth:`encode_targets`.

        Returns:
            ``(loss, grad_wrt_preds)``.
        """
        obj_mask = targets[..., 0:1]
        cfg = self.config
        grad = np.zeros_like(preds)

        # Objectness BCE, weighted down on empty cells.
        weights = obj_mask + cfg.lambda_noobj * (1.0 - obj_mask)
        obj_loss, obj_grad = binary_cross_entropy_with_logits(
            preds[..., 0:1], targets[..., 0:1], weight=weights
        )
        grad[..., 0:1] = obj_grad

        # Box terms only on positive cells: sigmoid on offsets, raw log-size.
        n_pos = max(float(obj_mask.sum()), 1.0)
        off_pred = sigmoid(preds[..., 1:3])
        off_diff = (off_pred - targets[..., 1:3]) * obj_mask
        box_loss = float(np.sum(off_diff**2)) / n_pos
        grad[..., 1:3] = cfg.lambda_box * 2.0 * off_diff * off_pred * (1 - off_pred) / n_pos

        size_diff = (preds[..., 3:5] - targets[..., 3:5]) * obj_mask
        size_loss = float(np.sum(size_diff**2)) / n_pos
        grad[..., 3:5] = cfg.lambda_box * 2.0 * size_diff / n_pos

        # Class cross-entropy on positive cells.
        cls_loss = 0.0
        if self.n_classes > 0:
            probs = softmax(preds[..., 5:], axis=-1)
            cls_grad = (probs - targets[..., 5:]) * obj_mask / n_pos
            pos = obj_mask[..., 0] > 0
            if np.any(pos):
                eps = 1e-12
                cls_loss = -float(
                    np.sum(targets[..., 5:][pos] * np.log(probs[pos] + eps))
                ) / n_pos
            grad[..., 5:] = cls_grad

        total = obj_loss + cfg.lambda_box * (box_loss + size_loss) + cls_loss
        return total, grad

    # -- training ---------------------------------------------------------------------

    def fit(
        self,
        images: np.ndarray,
        annotations: list[list],
        epochs: int = 30,
        batch_size: int = 8,
        lr: float = 1e-3,
        seed: int = 0,
    ) -> list[float]:
        """Train on ``(N, H, W, 3)`` images with per-image GT lists.

        Returns:
            Per-epoch mean losses.
        """
        if images.shape[1:3] != self.config.input_hw:
            raise ValueError(
                f"images are {images.shape[1:3]}, expected {self.config.input_hw}"
            )
        targets = np.stack([self.encode_targets(a) for a in annotations])
        optimizer = Adam(self.net.params(), lr=lr)
        rng = np.random.default_rng(seed)
        losses: list[float] = []
        for _ in range(epochs):
            order = rng.permutation(images.shape[0])
            epoch_loss = 0.0
            for i in range(0, len(order), batch_size):
                idx = order[i : i + batch_size]
                preds = self.net.forward(images[idx], training=True)
                loss, grad = self.loss_and_grad(preds, targets[idx])
                self.net.zero_grad()
                self.net.backward(grad)
                optimizer.step()
                epoch_loss += loss * len(idx)
            losses.append(epoch_loss / images.shape[0])
        return losses

    # -- inference ---------------------------------------------------------------------

    def detect(self, image: np.ndarray) -> list[Detection]:
        """Decode detections for one ``(H, W, 3)`` image."""
        preds = self.net.forward(image[None], training=False)[0]
        return self.decode(preds)

    def decode(self, preds: np.ndarray) -> list[Detection]:
        """Turn one raw ``(gh, gw, 5+C)`` head output into detections.

        Fully vectorized over the above-threshold cells (the hot decode
        loop used to be per-cell Python); the arithmetic is elementwise,
        so detections are identical to the scalar formulation.
        """
        obj = sigmoid(preds[..., 0])
        offs = sigmoid(preds[..., 1:3])
        sizes = np.exp(np.clip(preds[..., 3:5], -2.0, 8.0))
        cls_probs = softmax(preds[..., 5:], axis=-1)

        ys, xs = np.nonzero(obj >= self.config.score_threshold)
        if ys.size == 0:
            return []
        cell_offs = offs[ys, xs]
        cell_wh = sizes[ys, xs]
        cell_cls = cls_probs[ys, xs]
        cx = (xs + cell_offs[:, 0]) * self.STRIDE
        cy = (ys + cell_offs[:, 1]) * self.STRIDE
        cls = np.argmax(cell_cls, axis=-1)
        scores = obj[ys, xs] * cell_cls[np.arange(ys.size), cls]
        boxes = np.column_stack(
            [
                cx - cell_wh[:, 0] / 2.0,
                cy - cell_wh[:, 1] / 2.0,
                cell_wh[:, 0],
                cell_wh[:, 1],
            ]
        )
        keep = nms(boxes, scores, self.config.nms_iou)
        return [
            Detection(
                self.config.classes[int(cls[i])],
                float(scores[i]),
                float(boxes[i, 0]),
                float(boxes[i, 1]),
                float(boxes[i, 2]),
                float(boxes[i, 3]),
            )
            for i in keep
        ]
