"""Multi-scale normalized-cross-correlation detector (stage-1 stand-in).

This deterministic detector replaces YOLOv8-nano in the Table 2 experiment.
Its job is identical to the paper's stage-1 model: given a (possibly pooled,
possibly grayscale) frame, emit class-labelled boxes with confidences.  Like
any detector it degrades when objects shrink below a few pixels and when its
discriminative cue (color) is removed — which is precisely the behavior the
paper's accuracy study measures.

Method
------
* **featurize** — frames are lifted to ``C+1`` channels: the raw color (or
  gray) channels plus a gradient-magnitude channel computed across *all*
  input channels.  In RGB mode the gradient keeps iso-luminant (chroma)
  edges; in gray mode those edges vanish — the mechanism behind the paper's
  RGB-vs-gray accuracy gap.  Crucially, features are always computed *at
  matching scale*: detection downscales the raw frame first (anti-aliased)
  and featurizes the pyramid level, and templates are built from raw crops
  resized to the same canonical heights — so template and frame features
  describe the same spatial frequency band.
* **fit** — per class, raw ground-truth crops are resized to a small bank
  of canonical heights and averaged into per-size templates (per
  colorspace, mirroring the paper's per-mode retraining); the class's
  median box size is recorded.
* **detect** — per class and scale, normalized cross-correlation (NCC) is
  computed via FFT convolution.  Objects larger than the canonical
  template are matched by downscaling the *image* (pyramid search); smaller
  objects use the nearest smaller template from the bank.  The template is
  zero-meaned per channel so local window means cancel exactly.  Local
  maxima above threshold become detections; greedy NMS dedups per class,
  then an optional cross-class NMS resolves nested-class confusion (e.g.
  the person inside every cyclist).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
from scipy.ndimage import maximum_filter
from scipy.signal import fftconvolve

from ..eval.boxes import nms
from ..eval.metrics import Detection
from ..image import downscale_antialiased, ensure_channels, resize_bilinear, to_gray


def featurize(
    image: np.ndarray, colorspace: str = "rgb", edge_weight: float = 1.5
) -> np.ndarray:
    """Lift a frame to detection feature space (color + gradient magnitude).

    Args:
        image: ``(H, W, 3)`` RGB, or ``(H, W[, 1])`` gray.
        colorspace: "rgb" keeps three color channels; "gray" collapses RGB
            input to luma first (2-D input passes through as-is, matching
            a sensor that merged channels in the analog domain).
        edge_weight: scale of the gradient-magnitude channel.

    Returns:
        ``(H, W, C+1)`` float64 feature stack.
    """
    img = np.asarray(image, dtype=np.float64)
    if colorspace == "gray":
        img = ensure_channels(to_gray(img))
    elif img.ndim == 2:
        raise ValueError("rgb detector received a 2-D (grayscale) image")
    else:
        img = ensure_channels(img)
    grad_sq = np.zeros(img.shape[:2])
    for c in range(img.shape[2]):
        gy, gx = np.gradient(img[:, :, c])
        grad_sq += gx**2 + gy**2
    gradmag = np.sqrt(grad_sq)
    return np.concatenate([img, edge_weight * gradmag[:, :, None]], axis=2)


def _center(template: np.ndarray) -> np.ndarray:
    """Zero-mean per channel, unit Frobenius norm overall."""
    out = template - template.mean(axis=(0, 1), keepdims=True)
    norm = float(np.sqrt(np.sum(out**2)))
    return out / norm if norm > 1e-9 else out


@dataclass
class ClassTemplate:
    """Learned appearance model of one class.

    Attributes:
        label: class name.
        bank: canonical height -> per-channel zero-mean feature template
            (each built from crops resized to that height *before*
            featurization, so its spatial-frequency content is native).
        median_size: ``(height, width)`` of the class's GT boxes at fit
            resolution; detection sweeps scales around it.
    """

    label: str
    bank: dict[int, np.ndarray]
    median_size: tuple[float, float]

    def nearest(self, height: float) -> tuple[int, np.ndarray]:
        """Bank entry whose canonical height is closest (in log scale)."""
        best = min(self.bank, key=lambda s: abs(np.log(s / max(height, 1e-6))))
        return best, self.bank[best]


@dataclass
class CorrelationDetector:
    """Stage-1 detector based on multi-scale template correlation.

    Attributes:
        classes: classes to detect.
        colorspace: "rgb" or "gray"; gray inputs may be 2-D images.
        template_height: canonical (largest) template height in pixels.
        scales: relative scales (of the class median size) swept at
            detection time.
        score_threshold: minimum NCC to emit a detection.
        nms_iou: per-class NMS threshold.
        cross_class_nms_iou: if not ``None``, a second NMS across classes
            (classes compete for the same pixels; resolves nested classes).
        max_detections: cap on detections per image per class.
        min_template_px: skip scales where the expected object side falls
            below this — unresolvable objects are simply not detected.
        edge_weight: weight of the gradient-magnitude feature channel.
    """

    classes: tuple[str, ...]
    colorspace: str = "rgb"
    template_height: int = 28
    scales: tuple[float, ...] = (0.62, 0.8, 1.0, 1.3, 1.7)
    score_threshold: float = 0.25
    nms_iou: float = 0.4
    cross_class_nms_iou: float | None = 0.35
    max_detections: int = 80
    min_template_px: int = 4
    edge_weight: float = 1.5
    _templates: dict[str, ClassTemplate] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.colorspace not in ("rgb", "gray"):
            raise ValueError("colorspace must be 'rgb' or 'gray'")
        if not self.classes:
            raise ValueError("classes must be non-empty")

    def _featurize(self, image: np.ndarray) -> np.ndarray:
        return featurize(image, self.colorspace, self.edge_weight)

    def _bank_sizes(self) -> tuple[int, ...]:
        th = self.template_height
        return (th, max(th // 2, 4), max(th // 4, 4))

    # -- training --------------------------------------------------------------------

    def fit(
        self,
        images: Sequence[np.ndarray],
        annotations: Sequence[Sequence],
    ) -> "CorrelationDetector":
        """Learn per-class template banks from annotated frames.

        Args:
            images: training frames (RGB ``(H, W, 3)``, or gray ``(H, W)``
                for a gray detector), at the detector's working resolution.
            annotations: per-image GT lists; entries need ``label`` and
                ``xywh`` attributes (e.g. ``GroundTruthBox``).

        Returns:
            self, for chaining.
        """
        if len(images) != len(annotations):
            raise ValueError("images and annotations must align")
        raw_crops: dict[str, list[np.ndarray]] = {c: [] for c in self.classes}
        sizes: dict[str, list[tuple[float, float]]] = {c: [] for c in self.classes}
        for image, gts in zip(images, annotations):
            img = np.asarray(image, dtype=np.float64)
            h_img, w_img = img.shape[:2]
            for gt in gts:
                if gt.label not in raw_crops:
                    continue
                x, y, w, h = (int(round(v)) for v in gt.xywh)
                x0, y0 = max(x, 0), max(y, 0)
                x1, y1 = min(x + w, w_img), min(y + h, h_img)
                if x1 - x0 < 2 or y1 - y0 < 2:
                    continue
                raw_crops[gt.label].append(img[y0:y1, x0:x1])
                sizes[gt.label].append((float(y1 - y0), float(x1 - x0)))

        self._templates.clear()
        for label in self.classes:
            crops = raw_crops[label]
            if not crops:
                continue
            aspect = float(
                np.median([c.shape[1] / c.shape[0] for c in crops])
            )
            bank: dict[int, np.ndarray] = {}
            for s in self._bank_sizes():
                tw = max(int(round(s * aspect)), 2)
                feats = [
                    self._featurize(resize_bilinear(c, (s, tw))) for c in crops
                ]
                template = _center(np.mean(feats, axis=0))
                if float(np.sum(template**2)) > 1e-12:
                    bank[s] = template
            if not bank:
                continue
            heights = [sz[0] for sz in sizes[label]]
            widths = [sz[1] for sz in sizes[label]]
            self._templates[label] = ClassTemplate(
                label=label,
                bank=bank,
                median_size=(float(np.median(heights)), float(np.median(widths))),
            )
        return self

    @property
    def fitted_classes(self) -> tuple[str, ...]:
        return tuple(self._templates)

    # -- inference -------------------------------------------------------------------

    def detect(self, image: np.ndarray) -> list[Detection]:
        """Detect all classes in one frame via pyramid NCC matching.

        Args:
            image: frame in the detector's colorspace (RGB array, or 2-D /
                3-D gray for a gray detector).

        Returns:
            List of :class:`~repro.ml.eval.metrics.Detection`, NMS-dedupped,
            sorted by descending score, in input-frame coordinates.
        """
        if not self._templates:
            raise RuntimeError("detector not fitted; call fit() first")
        raw = np.asarray(image, dtype=np.float64)
        frame_h, frame_w = raw.shape[:2]

        # Featurized pyramid levels and their local stats, shared across
        # classes and cached per downscale factor / window size.
        level_cache: dict[float, np.ndarray] = {}
        stats_cache: dict[tuple[float, int, int], np.ndarray] = {}

        def level(factor: float) -> np.ndarray:
            key = round(factor, 4)
            if key not in level_cache:
                scaled = raw if key == 1.0 else downscale_antialiased(raw, factor)
                level_cache[key] = self._featurize(scaled)
            return level_cache[key]

        def local_variance(factor: float, th: int, tw: int) -> np.ndarray:
            key = (round(factor, 4), th, tw)
            if key not in stats_cache:
                img = level(factor)
                kernel = np.ones((th, tw))
                n_pix = th * tw
                total = np.zeros((img.shape[0] - th + 1, img.shape[1] - tw + 1))
                for c in range(img.shape[2]):
                    s = fftconvolve(img[:, :, c], kernel, mode="valid")
                    sq = fftconvolve(img[:, :, c] ** 2, kernel, mode="valid")
                    total += sq - s**2 / n_pix
                stats_cache[key] = np.clip(total, 1e-9, None)
            return stats_cache[key]

        detections: list[Detection] = []
        for label, model in self._templates.items():
            boxes: list[tuple[float, float, float, float]] = []
            scores: list[float] = []
            med_h, med_w = model.median_size
            for scale in self.scales:
                obj_h = med_h * scale
                obj_w = med_w * scale
                if obj_h < self.min_template_px or obj_w < self.min_template_px:
                    continue
                if obj_h > frame_h or obj_w > frame_w:
                    continue
                size, template = model.nearest(obj_h)
                # Downscale the image so the object meets its template.
                factor = min(size / obj_h, 1.0)
                if factor < 1.0:
                    img = level(factor)
                    th, tw = template.shape[0], template.shape[1]
                else:
                    # Object smaller than the smallest bank entry: shrink
                    # the template the rest of the way.
                    img = level(1.0)
                    th = max(int(round(obj_h)), 2)
                    tw = max(int(round(obj_w)), 2)
                    if (th, tw) != template.shape[:2]:
                        template = _center(resize_bilinear(template, (th, tw)))
                if float(np.sum(template**2)) < 1e-12:
                    continue
                if th > img.shape[0] or tw > img.shape[1]:
                    continue

                num = np.zeros((img.shape[0] - th + 1, img.shape[1] - tw + 1))
                for c in range(img.shape[2]):
                    num += fftconvolve(
                        img[:, :, c], template[::-1, ::-1, c], mode="valid"
                    )
                ncc = num / np.sqrt(local_variance(factor, th, tw))

                neighborhood = (max(th // 2, 3), max(tw // 2, 3))
                peaks = (ncc == maximum_filter(ncc, size=neighborhood)) & (
                    ncc >= self.score_threshold
                )
                ys, xs = np.nonzero(peaks)
                for y, x in zip(ys, xs):
                    boxes.append((x / factor, y / factor, tw / factor, th / factor))
                    scores.append(float(ncc[y, x]))

            if not boxes:
                continue
            keep = nms(np.asarray(boxes), np.asarray(scores), self.nms_iou)
            keep = keep[: self.max_detections]
            for idx in keep:
                x, y, w, h = boxes[idx]
                detections.append(Detection(label, scores[idx], x, y, w, h))

        if self.cross_class_nms_iou is not None and detections:
            all_boxes = np.asarray([d.xywh for d in detections])
            all_scores = np.asarray([d.score for d in detections])
            keep = nms(all_boxes, all_scores, self.cross_class_nms_iou)
            detections = [detections[i] for i in keep]

        detections.sort(key=lambda d: -d.score)
        return detections

    def detect_batch(self, images: Sequence[np.ndarray]) -> list[list[Detection]]:
        """Detect over a list of frames (convenience for evaluation)."""
        return [self.detect(img) for img in images]
