"""NumPy ML substrate: layers/training, detectors, classifiers, evaluation."""

from .classifier.cnn import (
    mcunetv2_like_classifier,
    mobilenetv2_like_classifier,
    tiny_cnn,
)
from .classifier.crop import CropClassifier, CropPrediction
from .classifier.features import (
    CLASSIFIER_PRESETS,
    HOGClassifier,
    SoftmaxRegression,
    hog_features,
)
from .detector.classical import ClassTemplate, CorrelationDetector
from .detector.grid import GridDetector, GridDetectorConfig
from .eval import (
    Detection,
    MAPResult,
    average_precision,
    classification_accuracy,
    evaluate_detections,
    iou_matrix,
    nms,
)
from .image import crop_padded, ensure_channels, resize_bilinear, to_gray
from .model import Sequential
from .train import TrainHistory, fit_classifier, predict_classifier

__all__ = [
    "CLASSIFIER_PRESETS",
    "ClassTemplate",
    "CorrelationDetector",
    "CropClassifier",
    "CropPrediction",
    "Detection",
    "GridDetector",
    "GridDetectorConfig",
    "HOGClassifier",
    "MAPResult",
    "Sequential",
    "SoftmaxRegression",
    "TrainHistory",
    "average_precision",
    "classification_accuracy",
    "crop_padded",
    "ensure_channels",
    "evaluate_detections",
    "fit_classifier",
    "hog_features",
    "iou_matrix",
    "mcunetv2_like_classifier",
    "mobilenetv2_like_classifier",
    "nms",
    "predict_classifier",
    "resize_bilinear",
    "tiny_cnn",
    "to_gray",
]
