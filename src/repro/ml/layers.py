"""Neural-network layers with forward/backward passes, in pure NumPy.

This is the training/inference substrate standing in for the paper's
PyTorch/TFLite toolchain.  Layout is NHWC throughout (batch, height, width,
channels) — the same layout TFLite-Micro uses on the MCUs the paper targets.

Every layer implements:

* ``forward(x, training=False)`` — returns the output and caches whatever
  the backward pass needs;
* ``backward(grad_out)`` — returns the gradient w.r.t. the input and
  accumulates parameter gradients into each :class:`Param`;
* ``params()`` — the trainable :class:`Param` objects.

Convolutions use im2col via ``numpy.lib.stride_tricks.sliding_window_view``
so they are vectorized end to end.

Inference additionally honors a per-layer **compute dtype** (float64 by
default, float32 opt-in via :meth:`Layer.set_compute_dtype`): parameters and
running statistics are cast once, and every forward preserves the dtype —
float32 never silently upcasts.  :meth:`Layer.predict_batch` is the batched
inference entry point: it casts the input stack to the compute dtype and
runs one ``training=False`` forward, whose per-sample rows are bit-identical
to batch-size-1 forwards (the :class:`Dense` inference matmul deliberately
uses a fixed-order accumulation so the result cannot depend on how many
rows share the pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

#: Dtypes :meth:`Layer.set_compute_dtype` accepts.
COMPUTE_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def as_compute_dtype(dtype) -> np.dtype:
    """Normalize/validate a compute dtype (raises naming the valid set)."""
    dtype = np.dtype(dtype)
    if dtype not in COMPUTE_DTYPES:
        names = sorted(d.name for d in COMPUTE_DTYPES)
        raise ValueError(
            f"compute_dtype: expected one of {names}, got {dtype.name!r}"
        )
    return dtype


@dataclass
class Param:
    """A trainable tensor and its accumulated gradient."""

    value: np.ndarray
    grad: np.ndarray = field(init=False)
    name: str = "param"

    def __post_init__(self) -> None:
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Layer:
    """Base layer: stateless by default."""

    #: Inference dtype; class default float64, overridden per instance by
    #: :meth:`set_compute_dtype`.
    compute_dtype: np.dtype = np.dtype(np.float64)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def params(self) -> list[Param]:
        return []

    def set_compute_dtype(self, dtype) -> "Layer":
        """Cast parameters (and running state) to an inference dtype.

        Intended for frozen/inference use: gradients are re-zeroed in the
        new dtype, so switching mid-training discards optimizer-relevant
        state.  ``float64`` is the default; ``float32`` halves memory
        traffic on the serving hot path at a documented precision cost.

        Args:
            dtype: ``"float32"``/``"float64"`` (or the numpy equivalents).

        Returns:
            ``self``, for chaining.
        """
        self.compute_dtype = dtype = as_compute_dtype(dtype)
        for param in self.params():
            param.value = np.ascontiguousarray(param.value, dtype=dtype)
            param.grad = np.zeros_like(param.value)
        self._cast_state(dtype)
        return self

    def _cast_state(self, dtype: np.dtype) -> None:
        """Hook for non-parameter state (e.g. batch-norm running stats)."""

    def predict_batch(self, x: np.ndarray) -> np.ndarray:
        """Inference on a stack: cast to the compute dtype, one forward.

        The per-sample rows of the result are bit-identical to running
        each sample through its own batch-size-1 ``predict_batch`` call.
        """
        return self.forward(np.asarray(x, dtype=self.compute_dtype), training=False)

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training)


def _he_init(rng: np.random.Generator, shape: tuple[int, ...], fan_in: int) -> np.ndarray:
    return rng.standard_normal(shape) * np.sqrt(2.0 / max(fan_in, 1))


def _pad_nhwc(x: np.ndarray, pad: int) -> np.ndarray:
    if pad == 0:
        return x
    return np.pad(x, ((0, 0), (pad, pad), (pad, pad), (0, 0)))


class Conv2D(Layer):
    """Standard 2-D convolution, NHWC, square kernel, symmetric padding.

    Args:
        in_channels: input channel count.
        out_channels: filter count.
        kernel: kernel side length.
        stride: spatial stride.
        pad: symmetric zero padding ("same" for stride 1 when
            ``pad = kernel // 2``).
        rng: initializer generator (He normal).
        bias: include a bias term.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int | None = None,
        rng: np.random.Generator | None = None,
        bias: bool = True,
    ):
        rng = rng or np.random.default_rng(0)
        self.kernel = kernel
        self.stride = stride
        self.pad = kernel // 2 if pad is None else pad
        fan_in = kernel * kernel * in_channels
        self.w = Param(
            _he_init(rng, (kernel, kernel, in_channels, out_channels), fan_in),
            name="conv_w",
        )
        self.b = Param(np.zeros(out_channels), name="conv_b") if bias else None
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        xp = _pad_nhwc(x, self.pad)
        k, s = self.kernel, self.stride
        windows = sliding_window_view(xp, (k, k), axis=(1, 2))[:, ::s, ::s]
        # windows: (N, OH, OW, C, k, k) -> reorder to (N, OH, OW, k, k, C)
        windows = windows.transpose(0, 1, 2, 4, 5, 3)
        n, oh, ow = windows.shape[:3]
        cols = windows.reshape(n, oh, ow, -1)
        w_mat = self.w.value.reshape(-1, self.w.value.shape[-1])
        # The kernel taps are pre-folded into one contraction axis, so
        # each output element is a fixed-length row-dot whatever the
        # batch size (bit-identity is bench-asserted per PR 4).
        # repro: lint-ok[no-bare-matmul-in-inference] fixed row-dot, batch-invariant
        out = cols @ w_mat
        if self.b is not None:
            out += self.b.value
        if training:
            self._cache = (x.shape, cols)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_shape, cols = self._cache
        n, oh, ow, _ = grad_out.shape
        k, s = self.kernel, self.stride
        w_mat = self.w.value.reshape(-1, self.w.value.shape[-1])

        grad_flat = grad_out.reshape(-1, grad_out.shape[-1])
        cols_flat = cols.reshape(-1, cols.shape[-1])
        self.w.grad += (cols_flat.T @ grad_flat).reshape(self.w.value.shape)
        if self.b is not None:
            self.b.grad += grad_flat.sum(axis=0)

        grad_cols = (grad_flat @ w_mat.T).reshape(n, oh, ow, k, k, -1)
        # Scatter-add the column gradients back to the padded input.
        hp, wp = x_shape[1] + 2 * self.pad, x_shape[2] + 2 * self.pad
        grad_xp = np.zeros((n, hp, wp, x_shape[3]))
        for ki in range(k):
            for kj in range(k):
                grad_xp[:, ki : ki + oh * s : s, kj : kj + ow * s : s, :] += grad_cols[
                    :, :, :, ki, kj, :
                ]
        if self.pad:
            grad_xp = grad_xp[:, self.pad : -self.pad, self.pad : -self.pad, :]
        self._cache = None
        return grad_xp

    def params(self) -> list[Param]:
        return [self.w] + ([self.b] if self.b is not None else [])


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution (one filter per input channel), NHWC."""

    def __init__(
        self,
        channels: int,
        kernel: int = 3,
        stride: int = 1,
        pad: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.kernel = kernel
        self.stride = stride
        self.pad = kernel // 2 if pad is None else pad
        self.w = Param(
            _he_init(rng, (kernel, kernel, channels), kernel * kernel), name="dwconv_w"
        )
        self.b = Param(np.zeros(channels), name="dwconv_b")
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        xp = _pad_nhwc(x, self.pad)
        k, s = self.kernel, self.stride
        windows = sliding_window_view(xp, (k, k), axis=(1, 2))[:, ::s, ::s]
        # (N, OH, OW, C, k, k); weights (k, k, C) -> einsum over k,k per C.
        out = np.einsum("nhwckl,klc->nhwc", windows, self.w.value)
        out += self.b.value
        if training:
            self._cache = (x.shape, windows)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_shape, windows = self._cache
        k, s = self.kernel, self.stride
        n, oh, ow, c = grad_out.shape
        self.w.grad += np.einsum("nhwckl,nhwc->klc", windows, grad_out)
        self.b.grad += grad_out.sum(axis=(0, 1, 2))

        hp, wp = x_shape[1] + 2 * self.pad, x_shape[2] + 2 * self.pad
        grad_xp = np.zeros((n, hp, wp, c))
        for ki in range(k):
            for kj in range(k):
                grad_xp[:, ki : ki + oh * s : s, kj : kj + ow * s : s, :] += (
                    grad_out * self.w.value[ki, kj, :]
                )
        if self.pad:
            grad_xp = grad_xp[:, self.pad : -self.pad, self.pad : -self.pad, :]
        self._cache = None
        return grad_xp

    def params(self) -> list[Param]:
        return [self.w, self.b]


class ReLU(Layer):
    """Rectified linear unit; ``cap`` turns it into ReLU6-style clipping."""

    def __init__(self, cap: float | None = None):
        self.cap = cap
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.maximum(x, 0.0)
        if self.cap is not None:
            out = np.minimum(out, self.cap)
        if training:
            self._mask = (x > 0.0) if self.cap is None else ((x > 0.0) & (x < self.cap))
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward(training=True)")
        grad = grad_out * self._mask
        self._mask = None
        return grad


def relu6() -> ReLU:
    """The MobileNet activation."""
    return ReLU(cap=6.0)


class MaxPool2D(Layer):
    """Non-overlapping k x k max pooling (input sides must divide by k)."""

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError("pool size must be >= 1")
        self.k = k
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        n, h, w, c = x.shape
        k = self.k
        if h % k or w % k:
            raise ValueError(f"spatial dims ({h},{w}) must divide pool size {k}")
        blocks = x.reshape(n, h // k, k, w // k, k, c)
        out = blocks.max(axis=(2, 4))
        if training:
            self._cache = (x, out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x, out = self._cache
        n, h, w, c = x.shape
        k = self.k
        upsampled = np.repeat(np.repeat(out, k, axis=1), k, axis=2)
        mask = x == upsampled
        grad_up = np.repeat(np.repeat(grad_out, k, axis=1), k, axis=2)
        # Split ties evenly so the gradient stays well-defined.
        counts = (
            mask.reshape(n, h // k, k, w // k, k, c)
            .sum(axis=(2, 4), keepdims=True)
            .reshape(n, h // k, 1, w // k, 1, c)
        )
        counts_up = np.repeat(np.repeat(counts.reshape(n, h // k, w // k, c), k, 1), k, 2)
        self._cache = None
        return grad_up * mask / np.maximum(counts_up, 1)


class GlobalAvgPool(Layer):
    """Average over the spatial dimensions: NHWC -> NC."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.mean(axis=(1, 2))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        n, h, w, c = self._shape
        self._shape = None
        return np.broadcast_to(grad_out[:, None, None, :], (n, h, w, c)) / (h * w)


class Flatten(Layer):
    """NHWC -> N(HWC)."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward(training=True)")
        shape = self._shape
        self._shape = None
        return grad_out.reshape(shape)


class Dense(Layer):
    """Fully connected layer: NC_in -> NC_out."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator | None = None,
    ):
        rng = rng or np.random.default_rng(0)
        self.w = Param(_he_init(rng, (in_features, out_features), in_features), name="dense_w")
        self.b = Param(np.zeros(out_features), name="dense_b")
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if training:
            self._x = x
            return x @ self.w.value + self.b.value
        # Inference avoids BLAS on purpose: gemm/gemv pick different
        # accumulation kernels depending on the row count, which would make
        # a batched forward differ from batch-size-1 forwards in the last
        # few ulps.  einsum's fixed-order reduction is row-count-invariant,
        # so batched stage-2 inference stays bit-identical to the per-crop
        # loop; heads are small, so the BLAS loss is negligible here.
        return np.einsum("nk,km->nm", x, self.w.value) + self.b.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward(training=True)")
        self.w.grad += self._x.T @ grad_out
        self.b.grad += grad_out.sum(axis=0)
        grad_in = grad_out @ self.w.value.T
        self._x = None
        return grad_in

    def params(self) -> list[Param]:
        return [self.w, self.b]


class BatchNorm(Layer):
    """Batch normalization over all axes except the last (channel) axis.

    Works for both NHWC feature maps and NC vectors.  Uses batch statistics
    during training and exponential running statistics at inference.
    """

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        self.gamma = Param(np.ones(channels), name="bn_gamma")
        self.beta = Param(np.zeros(channels), name="bn_beta")
        self.momentum = momentum
        self.eps = eps
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        axes = tuple(range(x.ndim - 1))
        if training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean, var = self.running_mean, self.running_var
        x_hat = (x - mean) / np.sqrt(var + self.eps)
        if training:
            self._cache = (x_hat, var, axes)
        return self.gamma.value * x_hat + self.beta.value

    def _cast_state(self, dtype: np.dtype) -> None:
        self.running_mean = self.running_mean.astype(dtype)
        self.running_var = self.running_var.astype(dtype)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward(training=True)")
        x_hat, var, axes = self._cache
        m = float(np.prod([grad_out.shape[a] for a in axes]))
        self.gamma.grad += (grad_out * x_hat).sum(axis=axes)
        self.beta.grad += grad_out.sum(axis=axes)
        g = grad_out * self.gamma.value
        grad_in = (
            g - g.mean(axis=axes) - x_hat * (g * x_hat).mean(axis=axes)
        ) / np.sqrt(var + self.eps)
        # Note: the (m-1)/m Bessel factor is ignored, standard in practice.
        del m
        self._cache = None
        return grad_in

    def params(self) -> list[Param]:
        return [self.gamma, self.beta]
