"""Bounding-box geometry: IoU, conversions, and non-maximum suppression.

Boxes are ``(x, y, w, h)`` with the origin at the top-left, matching the
paper's ROI convention (the stage-1 model returns location (x, y) and
dimensions (W, H)).
"""

from __future__ import annotations

import numpy as np


def xywh_to_xyxy(boxes: np.ndarray) -> np.ndarray:
    """Convert ``(N, 4)`` xywh boxes to corner format."""
    boxes = np.asarray(boxes, dtype=np.float64)
    out = boxes.copy()
    out[..., 2] = boxes[..., 0] + boxes[..., 2]
    out[..., 3] = boxes[..., 1] + boxes[..., 3]
    return out


def xyxy_to_xywh(boxes: np.ndarray) -> np.ndarray:
    """Convert ``(N, 4)`` corner boxes to xywh format."""
    boxes = np.asarray(boxes, dtype=np.float64)
    out = boxes.copy()
    out[..., 2] = boxes[..., 2] - boxes[..., 0]
    out[..., 3] = boxes[..., 3] - boxes[..., 1]
    return out


def box_iou(a: tuple | np.ndarray, b: tuple | np.ndarray) -> float:
    """IoU of two single xywh boxes."""
    return float(iou_matrix(np.asarray(a)[None, :], np.asarray(b)[None, :])[0, 0])


def iou_matrix(boxes_a: np.ndarray, boxes_b: np.ndarray) -> np.ndarray:
    """Pairwise IoU between two xywh box sets.

    Args:
        boxes_a: ``(N, 4)`` array.
        boxes_b: ``(M, 4)`` array.

    Returns:
        ``(N, M)`` IoU matrix (zeros for degenerate boxes).
    """
    a = np.asarray(boxes_a, dtype=np.float64).reshape(-1, 4)
    b = np.asarray(boxes_b, dtype=np.float64).reshape(-1, 4)
    if a.size == 0 or b.size == 0:
        return np.zeros((a.shape[0], b.shape[0]))
    ax1, ay1 = a[:, 0], a[:, 1]
    ax2, ay2 = a[:, 0] + a[:, 2], a[:, 1] + a[:, 3]
    bx1, by1 = b[:, 0], b[:, 1]
    bx2, by2 = b[:, 0] + b[:, 2], b[:, 1] + b[:, 3]

    ix1 = np.maximum(ax1[:, None], bx1[None, :])
    iy1 = np.maximum(ay1[:, None], by1[None, :])
    ix2 = np.minimum(ax2[:, None], bx2[None, :])
    iy2 = np.minimum(ay2[:, None], by2[None, :])
    iw = np.clip(ix2 - ix1, 0.0, None)
    ih = np.clip(iy2 - iy1, 0.0, None)
    inter = iw * ih

    area_a = np.clip(a[:, 2], 0, None) * np.clip(a[:, 3], 0, None)
    area_b = np.clip(b[:, 2], 0, None) * np.clip(b[:, 3], 0, None)
    union = area_a[:, None] + area_b[None, :] - inter
    with np.errstate(divide="ignore", invalid="ignore"):
        iou = np.where(union > 0, inter / union, 0.0)
    return iou


def nms(boxes: np.ndarray, scores: np.ndarray, iou_threshold: float = 0.45) -> list[int]:
    """Greedy non-maximum suppression.

    Args:
        boxes: ``(N, 4)`` xywh array.
        scores: ``(N,)`` confidence scores.
        iou_threshold: boxes overlapping a kept box above this are dropped.

    Returns:
        Indices of kept boxes, sorted by descending score.
    """
    boxes = np.asarray(boxes, dtype=np.float64).reshape(-1, 4)
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if boxes.shape[0] != scores.shape[0]:
        raise ValueError("boxes and scores must have matching lengths")
    if boxes.shape[0] == 0:
        return []
    order = np.argsort(-scores)
    keep: list[int] = []
    ious = iou_matrix(boxes, boxes)
    suppressed = np.zeros(boxes.shape[0], dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        keep.append(int(idx))
        suppressed |= ious[idx] > iou_threshold
        suppressed[idx] = True
    return keep
