"""Detection metrics: per-class average precision and mAP.

Implements the standard VOC-style protocol the paper's YOLOv8 evaluation
reports (mAP at IoU 0.5): per class, predictions across the whole split are
sorted by confidence, greedily matched to unmatched ground truth at
IoU >= threshold, and AP is the area under the precision envelope of the
resulting PR curve ("all-points" interpolation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .boxes import iou_matrix


@dataclass(frozen=True)
class Detection:
    """One predicted box.

    Attributes:
        label: class name.
        score: confidence in [0, 1] (any monotone score works).
        x, y, w, h: box in pixels.
    """

    label: str
    score: float
    x: float
    y: float
    w: float
    h: float

    @property
    def xywh(self) -> tuple[float, float, float, float]:
        return (self.x, self.y, self.w, self.h)


def _gt_label(gt) -> str:
    return gt.label if hasattr(gt, "label") else gt[0]


def _gt_box(gt) -> tuple[float, float, float, float]:
    if hasattr(gt, "xywh"):
        return tuple(gt.xywh)
    return tuple(gt[1])


@dataclass
class MAPResult:
    """Evaluation outcome.

    Attributes:
        per_class_ap: class name -> AP in [0, 1] (classes absent from the
            ground truth are skipped entirely).
        iou_threshold: matching threshold used.
        n_images: number of evaluated images.
    """

    per_class_ap: dict[str, float]
    iou_threshold: float
    n_images: int

    @property
    def map(self) -> float:
        """Mean AP over classes present in the ground truth."""
        if not self.per_class_ap:
            return 0.0
        return float(np.mean(list(self.per_class_ap.values())))


def average_precision(recalls: np.ndarray, precisions: np.ndarray) -> float:
    """Area under the precision envelope (all-points interpolation).

    Args:
        recalls: monotonically non-decreasing recall values.
        precisions: precision at each recall point.

    Returns:
        AP in [0, 1].
    """
    if recalls.size == 0:
        return 0.0
    r = np.concatenate([[0.0], recalls, [recalls[-1]]])
    p = np.concatenate([[0.0], precisions, [0.0]])
    # Precision envelope: make precision monotonically non-increasing.
    for i in range(p.size - 2, -1, -1):
        p[i] = max(p[i], p[i + 1])
    changes = np.where(r[1:] != r[:-1])[0]
    return float(np.sum((r[changes + 1] - r[changes]) * p[changes + 1]))


def class_average_precision(
    predictions: Sequence[Sequence[Detection]],
    ground_truths: Sequence[Sequence],
    label: str,
    iou_threshold: float = 0.5,
) -> float | None:
    """AP of one class over a split.

    Args:
        predictions: per-image lists of :class:`Detection`.
        ground_truths: per-image lists of GT objects (anything with
            ``label`` and ``xywh`` attributes, or ``(label, (x,y,w,h))``).
        label: class to score.
        iou_threshold: match threshold.

    Returns:
        AP, or ``None`` when the class never appears in the ground truth.
    """
    if len(predictions) != len(ground_truths):
        raise ValueError("predictions and ground_truths must align per image")

    # Flatten class predictions with their image index.
    flat: list[tuple[float, int, tuple[float, float, float, float]]] = []
    for img_idx, dets in enumerate(predictions):
        for det in dets:
            if det.label == label:
                flat.append((float(det.score), img_idx, det.xywh))
    flat.sort(key=lambda item: -item[0])

    gt_boxes_per_image: list[np.ndarray] = []
    n_gt = 0
    for gts in ground_truths:
        boxes = [_gt_box(g) for g in gts if _gt_label(g) == label]
        n_gt += len(boxes)
        gt_boxes_per_image.append(np.asarray(boxes, dtype=np.float64).reshape(-1, 4))
    if n_gt == 0:
        return None
    if not flat:
        return 0.0

    matched = [np.zeros(b.shape[0], dtype=bool) for b in gt_boxes_per_image]
    tp = np.zeros(len(flat))
    fp = np.zeros(len(flat))
    for rank, (_, img_idx, box) in enumerate(flat):
        gt_boxes = gt_boxes_per_image[img_idx]
        if gt_boxes.shape[0] == 0:
            fp[rank] = 1.0
            continue
        ious = iou_matrix(np.asarray(box)[None, :], gt_boxes)[0]
        best = int(np.argmax(ious))
        if ious[best] >= iou_threshold and not matched[img_idx][best]:
            matched[img_idx][best] = True
            tp[rank] = 1.0
        else:
            fp[rank] = 1.0

    cum_tp = np.cumsum(tp)
    cum_fp = np.cumsum(fp)
    recalls = cum_tp / n_gt
    precisions = cum_tp / np.maximum(cum_tp + cum_fp, 1e-12)
    return average_precision(recalls, precisions)


def evaluate_detections(
    predictions: Sequence[Sequence[Detection]],
    ground_truths: Sequence[Sequence],
    classes: Sequence[str],
    iou_threshold: float = 0.5,
) -> MAPResult:
    """mAP@IoU over a split.

    Args:
        predictions: per-image lists of :class:`Detection`.
        ground_truths: per-image GT lists (see
            :func:`class_average_precision` for accepted forms).
        classes: classes to evaluate; classes with no GT instances are
            skipped (not counted as zero), matching common practice.
        iou_threshold: match threshold (paper: 0.5).

    Returns:
        :class:`MAPResult`.
    """
    per_class: dict[str, float] = {}
    for label in classes:
        ap = class_average_precision(predictions, ground_truths, label, iou_threshold)
        if ap is not None:
            per_class[label] = ap
    return MAPResult(
        per_class_ap=per_class,
        iou_threshold=iou_threshold,
        n_images=len(predictions),
    )


def classification_accuracy(predicted: np.ndarray, labels: np.ndarray) -> float:
    """Plain top-1 accuracy for the stage-2 classifiers."""
    predicted = np.asarray(predicted).reshape(-1)
    labels = np.asarray(labels).reshape(-1)
    if predicted.shape != labels.shape:
        raise ValueError("predicted and labels must have the same length")
    if predicted.size == 0:
        return 0.0
    return float(np.mean(predicted == labels))
