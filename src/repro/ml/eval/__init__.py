"""Evaluation utilities: box geometry, NMS, AP/mAP, accuracy."""

from .boxes import box_iou, iou_matrix, nms, xywh_to_xyxy, xyxy_to_xywh
from .metrics import (
    Detection,
    MAPResult,
    average_precision,
    class_average_precision,
    classification_accuracy,
    evaluate_detections,
)

__all__ = [
    "Detection",
    "MAPResult",
    "average_precision",
    "box_iou",
    "class_average_precision",
    "classification_accuracy",
    "evaluate_detections",
    "iou_matrix",
    "nms",
    "xywh_to_xyxy",
    "xyxy_to_xywh",
]
