"""Small image-processing utilities shared by the ML stack.

Pure NumPy implementations of bilinear resize, luma conversion, and padded
cropping — the operations a stage-1/stage-2 edge pipeline performs on
digital images after readout.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: BT.601 luma weights (matches ``repro.sensor.grayscale.LUMA_WEIGHTS``).
_LUMA = np.array([0.299, 0.587, 0.114])


def to_gray(image: np.ndarray) -> np.ndarray:
    """Luma grayscale of an ``(H, W, 3)`` image; 2-D images pass through."""
    if image.ndim == 2:
        return image
    if image.ndim == 3 and image.shape[2] == 3:
        return image @ _LUMA
    if image.ndim == 3 and image.shape[2] == 1:
        return image[:, :, 0]
    raise ValueError(f"expected (H, W[, 3]) image, got shape {image.shape}")


def ensure_channels(image: np.ndarray) -> np.ndarray:
    """Return the image as ``(H, W, C)`` (adds a channel axis to 2-D input)."""
    if image.ndim == 2:
        return image[:, :, None]
    if image.ndim == 3:
        return image
    raise ValueError(f"expected 2-D or 3-D image, got shape {image.shape}")


@lru_cache(maxsize=64)
def _resize_plan(in_hw: tuple[int, int], out_hw: tuple[int, int]):
    """Interpolation plan for one ``(in_hw, out_hw)`` pair, memoized.

    The serving hot path resizes every ROI crop to the classifier input
    size, so the same few shape pairs recur thousands of times; the
    index/weight tables depend only on the shapes, never on the pixels.
    Cached arrays are marked read-only (they are shared across calls) and
    the LRU keeps the footprint bounded — each plan is a few kB.

    Returns:
        ``(y0, y1, x0, x1, fy, fx)`` — row/column source indices already
        shaped for broadcasting, and the fractional blend weights.
    """
    h, w = in_hw
    oh, ow = out_hw
    # Align-corners=False sampling (pixel centers), standard for resizing.
    ys = (np.arange(oh) + 0.5) * h / oh - 0.5
    xs = (np.arange(ow) + 0.5) * w / ow - 0.5
    ys = np.clip(ys, 0.0, h - 1.0)
    xs = np.clip(xs, 0.0, w - 1.0)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    plan = (
        y0[:, None],
        y1[:, None],
        x0[None, :],
        x1[None, :],
        (ys - y0)[:, None, None],
        (xs - x0)[None, :, None],
    )
    for table in plan:
        table.setflags(write=False)
    return plan


def resize_bilinear(image: np.ndarray, out_hw: tuple[int, int]) -> np.ndarray:
    """Bilinear resize with edge clamping.

    Interpolation index/weight tables are memoized per ``(in_hw, out_hw)``
    shape pair (:func:`_resize_plan`), which is free on correctness: the
    plan depends only on the shapes, so outputs are bit-identical to an
    uncached resize.

    Args:
        image: ``(H, W)`` or ``(H, W, C)`` float array.
        out_hw: target ``(height, width)``.

    Returns:
        Resized array with the same channel layout as the input.
    """
    oh, ow = out_hw
    if oh < 1 or ow < 1:
        raise ValueError("output size must be positive")
    squeeze = image.ndim == 2
    img = ensure_channels(np.asarray(image, dtype=np.float64))
    h, w, c = img.shape
    if (h, w) == (oh, ow):
        out = img.copy()
        return out[:, :, 0] if squeeze else out

    y0, y1, x0, x1, fy, fx = _resize_plan((h, w), (int(oh), int(ow)))
    top = img[y0, x0] * (1 - fx) + img[y0, x1] * fx
    bottom = img[y1, x0] * (1 - fx) + img[y1, x1] * fx
    out = top * (1 - fy) + bottom * fy
    return out[:, :, 0] if squeeze else out


def downscale_antialiased(image: np.ndarray, factor: float) -> np.ndarray:
    """Downscale by ``factor`` (< 1) without aliasing.

    Plain bilinear sampling at large downscale factors samples only four
    source pixels per output pixel, so fine texture aliases into noise.
    This helper halves the image with 2x2 block means (a true area filter)
    until the remaining factor is > 1/2, then applies a single bilinear
    resize for the residual — matching what optics + a pooling sensor do.

    Args:
        image: ``(H, W)`` or ``(H, W, C)`` float array.
        factor: target scale in (0, 1].

    Returns:
        The downscaled image (same channel layout).
    """
    if not 0.0 < factor <= 1.0:
        raise ValueError("factor must be in (0, 1]")
    img = np.asarray(image, dtype=np.float64)
    remaining = factor
    while remaining <= 0.5 and min(img.shape[0], img.shape[1]) >= 4:
        h2, w2 = (img.shape[0] // 2) * 2, (img.shape[1] // 2) * 2
        cropped = img[:h2, :w2]
        if cropped.ndim == 2:
            img = cropped.reshape(h2 // 2, 2, w2 // 2, 2).mean(axis=(1, 3))
        else:
            img = cropped.reshape(h2 // 2, 2, w2 // 2, 2, cropped.shape[2]).mean(
                axis=(1, 3)
            )
        remaining *= 2.0
    out_h = max(int(round(image.shape[0] * factor)), 1)
    out_w = max(int(round(image.shape[1] * factor)), 1)
    return resize_bilinear(img, (out_h, out_w))


def crop_padded(image: np.ndarray, x: int, y: int, w: int, h: int) -> np.ndarray:
    """Crop a region, zero-padding the parts that fall outside the image.

    Unlike the sensor's :meth:`~repro.sensor.pixel_array.PixelArray.region`
    (which refuses out-of-bounds reads, as hardware would), a digital crop
    can pad freely; useful when expanding ROIs near frame edges.
    """
    if w <= 0 or h <= 0:
        raise ValueError("crop size must be positive")
    img = ensure_channels(np.asarray(image))
    out = np.zeros((h, w, img.shape[2]), dtype=img.dtype)
    x0, y0 = max(x, 0), max(y, 0)
    x1, y1 = min(x + w, img.shape[1]), min(y + h, img.shape[0])
    if x1 > x0 and y1 > y0:
        out[y0 - y : y1 - y, x0 - x : x1 - x] = img[y0:y1, x0:x1]
    return out[:, :, 0] if image.ndim == 2 else out
