"""Optimizers for the NumPy layer stack."""

from __future__ import annotations

import numpy as np

from .layers import Param


class Optimizer:
    """Base optimizer over a fixed parameter list."""

    def __init__(self, params: list[Param]):
        self.parameters = list(params)

    def step(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum and weight decay."""

    def __init__(
        self,
        params: list[Param],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            v *= self.momentum
            v -= self.lr * grad
            p.value += v


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        params: list[Param],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.beta1**self._t
        b2t = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.value
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad**2
            p.value -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)
