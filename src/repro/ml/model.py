"""Sequential model container for the NumPy layer stack."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .layers import Layer, Param, as_compute_dtype


class Sequential(Layer):
    """A chain of layers executed in order.

    >>> import numpy as np
    >>> from repro.ml.layers import Dense, ReLU
    >>> net = Sequential([Dense(4, 8), ReLU(), Dense(8, 2)])
    >>> net(np.zeros((3, 4))).shape
    (3, 2)
    """

    def __init__(self, layers: Sequence[Layer]):
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x, training)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def params(self) -> list[Param]:
        out: list[Param] = []
        for layer in self.layers:
            out.extend(layer.params())
        return out

    def zero_grad(self) -> None:
        for param in self.params():
            param.zero_grad()

    def set_compute_dtype(self, dtype) -> "Sequential":
        """Cast every layer to ``dtype`` (see :meth:`Layer.set_compute_dtype`).

        After ``set_compute_dtype("float32")``, :meth:`predict_batch` casts
        inputs to float32 and every layer's forward preserves it — nothing
        silently upcasts back to float64.
        """
        self.compute_dtype = as_compute_dtype(dtype)
        for layer in self.layers:
            layer.set_compute_dtype(self.compute_dtype)
        return self

    # -- (de)serialization ---------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Parameter snapshot keyed by position and name."""
        state: dict[str, np.ndarray] = {}
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.params()):
                state[f"{i}.{j}.{param.name}"] = param.value.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        for i, layer in enumerate(self.layers):
            for j, param in enumerate(layer.params()):
                key = f"{i}.{j}.{param.name}"
                if key not in state:
                    raise KeyError(f"missing parameter {key} in state dict")
                if state[key].shape != param.value.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: "
                        f"{state[key].shape} vs {param.value.shape}"
                    )
                param.value[...] = state[key]

    def n_parameters(self) -> int:
        return int(sum(p.value.size for p in self.params()))
