"""Stage-2 classifiers: HOG + linear (fast) and tiny CNNs (trainable)."""

from .cnn import mcunetv2_like_classifier, mobilenetv2_like_classifier, tiny_cnn
from .features import CLASSIFIER_PRESETS, HOGClassifier, SoftmaxRegression, hog_features

__all__ = [
    "CLASSIFIER_PRESETS",
    "HOGClassifier",
    "SoftmaxRegression",
    "hog_features",
    "mcunetv2_like_classifier",
    "mobilenetv2_like_classifier",
    "tiny_cnn",
]
