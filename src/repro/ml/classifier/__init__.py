"""Stage-2 classifiers: HOG + linear (fast), tiny CNNs, batched crop heads."""

from .cnn import mcunetv2_like_classifier, mobilenetv2_like_classifier, tiny_cnn
from .crop import CropClassifier, CropPrediction
from .features import CLASSIFIER_PRESETS, HOGClassifier, SoftmaxRegression, hog_features

__all__ = [
    "CLASSIFIER_PRESETS",
    "CropClassifier",
    "CropPrediction",
    "HOGClassifier",
    "SoftmaxRegression",
    "hog_features",
    "mcunetv2_like_classifier",
    "mobilenetv2_like_classifier",
    "tiny_cnn",
]
