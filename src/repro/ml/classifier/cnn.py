"""Tiny CNN classifier factories (trainable stage-2 models).

Two capacity tiers mirror the paper's stage-2 pair:

* :func:`tiny_cnn` with ``width=8`` — an MCUNetV2-flavored budget model;
* :func:`tiny_cnn` with ``width=16`` — a MobileNetV2-flavored larger model.

Architecturally these are small VGG-ish stacks (conv-BN-ReLU-pool) sized so
NumPy training at 14-112 px inputs stays tractable; the *memory-analysis*
versions of MCUNetV2/MobileNetV2 (faithful op graphs) live separately in
:mod:`repro.memory.zoo`, because Table 3's SRAM columns are a static
property of the architecture, not of these trained weights.
"""

from __future__ import annotations

import numpy as np

from ..layers import BatchNorm, Conv2D, Dense, Flatten, GlobalAvgPool, MaxPool2D, ReLU
from ..model import Sequential


def tiny_cnn(
    input_size: int,
    n_classes: int,
    width: int = 8,
    in_channels: int = 3,
    seed: int = 0,
) -> Sequential:
    """Build a small classifier for square ``input_size`` images.

    The network downsamples by 2 at each stage until the spatial side is
    <= 4, then applies global average pooling and a dense head; total depth
    therefore adapts to the input size (more stages for 112 px than 14 px),
    like scaling a mobile backbone across resolutions.

    Args:
        input_size: input side length in pixels (>= 8).
        n_classes: output classes.
        width: base channel count (doubles each stage, capped at 8x).
        in_channels: input channels (3 for RGB crops).
        seed: weight-init seed.

    Returns:
        A :class:`~repro.ml.model.Sequential` producing ``(N, n_classes)``
        logits.
    """
    if input_size < 8:
        raise ValueError("input_size must be >= 8")
    rng = np.random.default_rng(seed)
    layers: list = []
    channels = in_channels
    out_ch = width
    side = input_size
    while side > 4:
        layers.append(Conv2D(channels, out_ch, kernel=3, stride=1, rng=rng))
        layers.append(BatchNorm(out_ch))
        layers.append(ReLU())
        if side % 2 == 0:
            layers.append(MaxPool2D(2))
            side //= 2
        else:
            # Odd side: strided conv keeps shapes valid (ceil division).
            layers.append(Conv2D(out_ch, out_ch, kernel=3, stride=2, rng=rng))
            layers.append(ReLU())
            side = (side + 1) // 2
        channels = out_ch
        out_ch = min(out_ch * 2, width * 8)
    layers.append(GlobalAvgPool())
    layers.append(Dense(channels, n_classes, rng=rng))
    return Sequential(layers)


def mcunetv2_like_classifier(input_size: int, n_classes: int, seed: int = 0) -> Sequential:
    """Budget-tier trainable classifier (width 8)."""
    return tiny_cnn(input_size, n_classes, width=8, seed=seed)


def mobilenetv2_like_classifier(input_size: int, n_classes: int, seed: int = 0) -> Sequential:
    """Larger-tier trainable classifier (width 16)."""
    return tiny_cnn(input_size, n_classes, width=16, seed=seed)
