"""Batched stage-2 inference over ROI crops.

The pipelines hand the stage-2 task model a list of variable-size ROI
crops.  Running one batch-size-1 forward per crop wastes the vectorized
NumPy substrate; :class:`CropClassifier` is the batch-aware contract the
pipelines understand (duck-typed — see
:func:`repro.core.pipeline.classify_crops`):

* ``preprocess(crop)`` maps one crop to the model's input layout (here:
  bilinear resize to a fixed ``input_hw``);
* ``classify_batch(stack)`` classifies an ``(N, H, W, C)`` stack of
  preprocessed crops in **one** forward;
* plain ``__call__(crop)`` remains the per-crop reference path, defined
  *through* ``classify_batch`` so the two can never disagree.

In float64 (the default compute dtype) batched predictions are
bit-identical to the per-crop loop; ``set_compute_dtype("float32")`` opts
the whole network into float32 inference, which tracks float64 within the
documented tolerances (identical argmax on seeded clips, logit
``atol``/``rtol`` asserted by tests and ``benchmarks/bench_hotpath.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..image import ensure_channels, resize_bilinear
from ..losses import softmax
from ..model import Sequential

#: Documented float32-vs-float64 parity tolerances for classifier logits:
#: float32 logits must satisfy ``allclose(f32, f64, atol, rtol)`` *and*
#: produce identical argmax on seeded clips (asserted by tests and
#: ``benchmarks/bench_hotpath.py``).
FLOAT32_LOGIT_ATOL = 1e-4
FLOAT32_LOGIT_RTOL = 1e-4


@dataclass(frozen=True, eq=False)
class CropPrediction:
    """One crop's stage-2 output.

    Attributes:
        label: predicted class name.
        index: predicted class index (argmax of ``logits``).
        score: softmax probability of the predicted class.
        logits: raw ``(n_classes,)`` network output.
    """

    label: str
    index: int
    score: float
    logits: np.ndarray = field(repr=False)

    def __str__(self) -> str:
        return f"{self.label} ({self.score:.3f})"


class CropClassifier:
    """A :class:`~repro.ml.model.Sequential` head over resized ROI crops.

    Args:
        net: the classifier network; must accept ``(N, *input_hw, C)``
            stacks and produce ``(N, n_classes)`` logits.
        input_hw: fixed ``(height, width)`` every crop is resized to
            (bilinear, edge-clamped) before stacking — after this resize
            all of a frame's crops share one shape, so the pipeline can
            serve them in a single forward.
        classes: class names, index-aligned with the logits.
    """

    def __init__(
        self,
        net: Sequential,
        input_hw: tuple[int, int],
        classes: Sequence[str],
    ):
        oh, ow = int(input_hw[0]), int(input_hw[1])
        if oh < 1 or ow < 1:
            raise ValueError(f"input_hw must be positive, got {input_hw!r}")
        if not classes:
            raise ValueError("classes must be non-empty")
        self.net = net
        self.input_hw = (oh, ow)
        self.classes = tuple(str(c) for c in classes)

    @property
    def compute_dtype(self) -> np.dtype:
        return self.net.compute_dtype

    def set_compute_dtype(self, dtype) -> "CropClassifier":
        """Cast the network to an inference dtype (see ``Layer``)."""
        self.net.set_compute_dtype(dtype)
        return self

    def preprocess(self, crop: np.ndarray) -> np.ndarray:
        """One crop -> the network's fixed ``(H, W, C)`` input layout."""
        return resize_bilinear(ensure_channels(np.asarray(crop)), self.input_hw)

    def classify_batch(self, stack: np.ndarray) -> list[CropPrediction]:
        """Classify an ``(N, H, W, C)`` stack of preprocessed crops.

        One network forward for the whole stack; rows are bit-identical
        to batch-size-1 calls (the inference contract of
        :meth:`repro.ml.layers.Layer.predict_batch`).
        """
        stack = np.asarray(stack)
        if stack.ndim != 4:
            raise ValueError(
                f"expected an (N, H, W, C) stack, got shape {stack.shape}"
            )
        logits = self.net.predict_batch(stack)
        indices = np.argmax(logits, axis=-1)
        probs = softmax(logits, axis=-1)
        return [
            CropPrediction(
                label=self.classes[int(idx)],
                index=int(idx),
                score=float(probs[row, idx]),
                logits=logits[row].copy(),
            )
            for row, idx in enumerate(indices)
        ]

    def __call__(self, crop: np.ndarray) -> CropPrediction:
        """Per-crop reference path: a batch of one, through the same code."""
        return self.classify_batch(self.preprocess(crop)[None, ...])[0]
