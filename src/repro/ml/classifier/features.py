"""HOG-style features + linear softmax: the fast stage-2 classifier family.

The paper's Table 3 trains MCUNetV2 and MobileNetV2 expression classifiers
at every ROI resolution (14x14 ... 112x112) and shows accuracy rising with
resolution, with MobileNetV2 (the larger model) ahead of MCUNetV2.  Training
two CNNs per resolution is possible with :mod:`repro.ml.layers` but slow in
NumPy; the benchmark harness therefore uses this classical pipeline, which
preserves both effects:

* **resolution sensitivity** — gradient-orientation histograms sharpen as
  the underlying image resolves fine structure (brows, mouth curvature);
* **capacity ordering** — cell grid, orientation count, and the color
  channel are capacity knobs; the "mobilenetv2-like" configuration strictly
  dominates the "mcunetv2-like" one.

The CNN classifiers in :mod:`repro.ml.classifier.cnn` remain available for
users who want end-to-end gradient training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..image import to_gray


def hog_features(
    images: np.ndarray,
    n_cells: int = 6,
    n_orientations: int = 6,
    include_color: bool = True,
    color_cells: int = 4,
) -> np.ndarray:
    """Histogram-of-oriented-gradients features for a batch of images.

    Args:
        images: ``(N, H, W, C)`` or ``(N, H, W)`` float batch in [0, 1].
        n_cells: cells per side (capped at ``H // 2`` for tiny inputs).
        n_orientations: unsigned orientation bins over [0, pi).
        include_color: append a ``color_cells x color_cells`` block-mean RGB
            thumbnail (zeros for grayscale input).
        color_cells: thumbnail side length.

    Returns:
        ``(N, D)`` float feature matrix, L2-normalized per image.
    """
    if images.ndim == 3:
        images = images[:, :, :, None]
    n, h, w, c = images.shape
    cells = max(2, min(n_cells, h // 2, w // 2))

    feats: list[np.ndarray] = []
    cell_y = (np.arange(h) * cells // h).astype(np.int64)
    cell_x = (np.arange(w) * cells // w).astype(np.int64)
    cell_idx = cell_y[:, None] * cells + cell_x[None, :]

    for i in range(n):
        gray = to_gray(images[i]) if c == 3 else images[i, :, :, 0]
        gy, gx = np.gradient(gray)
        mag = np.sqrt(gx**2 + gy**2)
        ang = np.mod(np.arctan2(gy, gx), np.pi)
        bins = np.minimum((ang / np.pi * n_orientations).astype(np.int64), n_orientations - 1)
        flat_idx = cell_idx * n_orientations + bins
        hist = np.bincount(
            flat_idx.ravel(), weights=mag.ravel(), minlength=cells * cells * n_orientations
        )
        parts = [hist]
        if include_color:
            thumb = np.zeros((color_cells, color_cells, 3))
            if c == 3:
                ty = (np.arange(h) * color_cells // h).astype(np.int64)
                tx = (np.arange(w) * color_cells // w).astype(np.int64)
                for ch in range(3):
                    sums = np.zeros(color_cells * color_cells)
                    np.add.at(
                        sums, (ty[:, None] * color_cells + tx[None, :]).ravel(),
                        images[i, :, :, ch].ravel(),
                    )
                    counts = np.zeros(color_cells * color_cells)
                    np.add.at(
                        counts, (ty[:, None] * color_cells + tx[None, :]).ravel(), 1.0
                    )
                    thumb[:, :, ch] = (sums / np.maximum(counts, 1)).reshape(
                        color_cells, color_cells
                    )
            parts.append(thumb.ravel())
        feat = np.concatenate(parts)
        norm = np.linalg.norm(feat)
        feats.append(feat / norm if norm > 0 else feat)
    return np.stack(feats)


@dataclass
class SoftmaxRegression:
    """Multinomial logistic regression trained with full-batch Adam.

    Attributes:
        n_classes: output classes.
        lr: Adam learning rate.
        epochs: gradient steps (full-batch).
        l2: weight decay strength.
        seed: initializer seed.
    """

    n_classes: int
    lr: float = 0.05
    epochs: int = 300
    l2: float = 1e-4
    seed: int = 0
    _w: np.ndarray | None = field(default=None, repr=False)
    _b: np.ndarray | None = field(default=None, repr=False)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "SoftmaxRegression":
        n, d = features.shape
        rng = np.random.default_rng(self.seed)
        w = rng.standard_normal((d, self.n_classes)) * 0.01
        b = np.zeros(self.n_classes)
        m_w = np.zeros_like(w)
        v_w = np.zeros_like(w)
        m_b = np.zeros_like(b)
        v_b = np.zeros_like(b)
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        y_onehot = np.zeros((n, self.n_classes))
        y_onehot[np.arange(n), labels] = 1.0
        for t in range(1, self.epochs + 1):
            logits = features @ w + b
            logits -= logits.max(axis=1, keepdims=True)
            probs = np.exp(logits)
            probs /= probs.sum(axis=1, keepdims=True)
            grad_logits = (probs - y_onehot) / n
            g_w = features.T @ grad_logits + self.l2 * w
            g_b = grad_logits.sum(axis=0)
            for g, m, v, param in ((g_w, m_w, v_w, w), (g_b, m_b, v_b, b)):
                m *= beta1
                m += (1 - beta1) * g
                v *= beta2
                v += (1 - beta2) * g**2
                param -= self.lr * (m / (1 - beta1**t)) / (np.sqrt(v / (1 - beta2**t)) + eps)
        self._w, self._b = w, b
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._w is None or self._b is None:
            raise RuntimeError("model not fitted")
        return np.argmax(features @ self._w + self._b, axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self._w is None or self._b is None:
            raise RuntimeError("model not fitted")
        logits = features @ self._w + self._b
        logits -= logits.max(axis=1, keepdims=True)
        probs = np.exp(logits)
        return probs / probs.sum(axis=1, keepdims=True)


#: Capacity presets standing in for the paper's two stage-2 models.
CLASSIFIER_PRESETS = {
    # Small model: coarse cells, few orientations, no color thumbnail.
    "mcunetv2-like": dict(n_cells=5, n_orientations=6, include_color=False, color_cells=3),
    # Large model: fine cells, more orientations, color thumbnail.
    "mobilenetv2-like": dict(n_cells=8, n_orientations=9, include_color=True, color_cells=5),
}


@dataclass
class HOGClassifier:
    """HOG features + softmax regression with a named capacity preset.

    Args:
        preset: one of :data:`CLASSIFIER_PRESETS`.
        n_classes: number of classes.
        epochs: training steps for the linear head.
        seed: reproducibility seed.
    """

    preset: str
    n_classes: int
    epochs: int = 300
    seed: int = 0
    _head: SoftmaxRegression | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.preset not in CLASSIFIER_PRESETS:
            raise ValueError(
                f"unknown preset {self.preset!r}; choose from {sorted(CLASSIFIER_PRESETS)}"
            )

    def _features(self, images: np.ndarray) -> np.ndarray:
        return hog_features(images, **CLASSIFIER_PRESETS[self.preset])

    def fit(self, images: np.ndarray, labels: np.ndarray) -> "HOGClassifier":
        feats = self._features(images)
        self._head = SoftmaxRegression(
            n_classes=self.n_classes, epochs=self.epochs, seed=self.seed
        ).fit(feats, labels)
        return self

    def predict(self, images: np.ndarray) -> np.ndarray:
        if self._head is None:
            raise RuntimeError("classifier not fitted")
        return self._head.predict(self._features(images))

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(images) == np.asarray(labels)))
