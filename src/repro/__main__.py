"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — serve a JSON service spec through the :class:`~repro.service.Engine`;
* ``sweep`` — run a declarative experiment sweep and emit its paper-style
  JSON + markdown report (``repro.experiments``);
* ``components`` — list every registered detector/classifier/source/policy;
* ``experiments`` — list every reproducible paper artifact and its bench;
* ``costs`` — evaluate the Table 1 cost model for one configuration;
* ``compare`` — run both pipelines on a synthetic scene and print the
  reduction report;
* ``circuit`` — solve the analog averaging circuit's DC point.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_run(args: argparse.Namespace) -> int:
    from .service import Engine, SpecError

    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    try:
        engine = Engine.from_spec(args.spec)
    except (SpecError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    engine.profile = args.profile
    if not engine.scenarios:
        print(
            f"error: {args.spec}: spec has no scenarios to run "
            "(add a top-level \"scenarios\" list)",
            file=sys.stderr,
        )
        return 2
    try:
        batch = engine.run_batch(workers=args.workers, executor=args.executor)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for result in batch:
        print(result.report())
        print()
    print(batch.report())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import SweepRunner, build_report, load_sweep, write_report
    from .service import SpecError

    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    try:
        # load_sweep folds unreadable files into SpecError itself
        spec = load_sweep(args.sweep)
        if args.tiny:
            spec = spec.tiny()
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runner = SweepRunner(
        spec, executor=args.executor, workers=args.workers, profile=args.profile
    )
    try:
        result = runner.run()
        report = build_report(result)
    except (SpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.markdown)
    print()
    print(result.describe())
    if result.profile is not None:
        print("  phase breakdown (all cells):")
        print(result.profile.report())
    try:
        json_path, md_path = write_report(report, args.out)
    except OSError as exc:
        print(f"error: cannot write report to {args.out}: {exc}", file=sys.stderr)
        return 2
    print(f"  wrote {json_path} and {md_path}")
    failed = report.failed_trends
    if failed:
        for trend in failed:
            print(f"error: trend check failed: {trend.name}: {trend.detail}",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_components(_args: argparse.Namespace) -> int:
    from .service import list_components

    for kind, names in list_components().items():
        print(f"{kind}:")
        for name in names:
            print(f"  {name}")
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    from .bench import EXPERIMENTS

    for exp in EXPERIMENTS.values():
        print(f"{exp.exp_id:<8} {exp.paper_ref:<8} {exp.bench}")
        print(f"         {exp.description}")
    return 0


def _cmd_costs(args: argparse.Namespace) -> int:
    from .core import format_bytes, hirise_costs

    rois = [(args.roi, args.roi)] * args.n_rois
    breakdown = hirise_costs(
        args.width, args.height, args.k, rois, grayscale=args.gray
    )
    conv = breakdown.conventional
    print(f"pixel array {args.width}x{args.height}, k={args.k}, "
          f"{args.n_rois} ROIs of {args.roi}x{args.roi}, "
          f"stage-1 {'gray' if args.gray else 'RGB'}")
    print(f"  baseline transfer : {format_bytes(conv.data_transfer_bytes)}")
    print(f"  HiRISE transfer   : {format_bytes(breakdown.hirise_transfer_bits / 8)} "
          f"({breakdown.transfer_reduction:.1f}x less)")
    print(f"  baseline memory   : {format_bytes(conv.memory_bytes)}")
    print(f"  HiRISE peak memory: {format_bytes(breakdown.hirise_peak_memory_bits / 8)} "
          f"({breakdown.memory_reduction:.1f}x less)")
    print(f"  ADC conversions   : {conv.adc_conversions:,} -> "
          f"{breakdown.hirise_conversions:,} ({breakdown.conversion_reduction:.1f}x less)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core import (
        ConventionalPipeline,
        HiRISEConfig,
        HiRISEPipeline,
        ROI,
        comparison_report,
    )
    from .datasets import crowdhuman_like

    config = HiRISEConfig(
        pool_k=args.k,
        grayscale_stage1=args.gray,
        score_threshold=args.score_threshold,
    )
    scene = crowdhuman_like(1, resolution=(args.width, args.height), seed=args.seed)[0]
    rois = [
        ROI(int(b.x), int(b.y), max(int(b.w), 2), max(int(b.h), 2), 0.9, "head")
        for b in scene.boxes_for("head")
    ]
    hirise = HiRISEPipeline(config=config).run(scene.image, rois=rois)
    baseline = ConventionalPipeline().run(scene.image, rois=rois)
    print(comparison_report(hirise, baseline))
    return 0


def _cmd_circuit(args: argparse.Namespace) -> int:
    from .analog import AVG_NODE, DC, MNASolver, build_pooling_circuit

    circuit = build_pooling_circuit([DC(args.level)] * args.inputs)
    solution = MNASolver(circuit).dc()
    print(f"{args.inputs} inputs at {args.level} V -> shared node "
          f"{solution[AVG_NODE]:+.4f} V")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="HiRISE (DAC 2024) reproduction toolkit"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="serve a JSON service spec via the Engine")
    run.add_argument("spec", help="path to a service spec (see examples/specs/)")
    run.add_argument(
        "--workers", type=int, default=None,
        help="pool size for the batch (default: the spec's workers)",
    )
    run.add_argument(
        # Mirrors repro.service.EXECUTOR_NAMES (not imported here: parser
        # construction must stay cheap for non-service commands); the
        # executor tests assert the two stay in sync.
        "--executor", choices=["serial", "thread", "process"], default=None,
        help="batch executor (default: the spec's executor; process = "
        "spawn-safe multi-core pool for CPU-bound fleets)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="collect a per-phase wall-clock breakdown for every request "
        "(expose / stage1.read / detect / condition / stage2.read / "
        "stage2.classify); profiled requests always recompute",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative experiment sweep and emit its report "
        "(see examples/sweeps/)",
    )
    sweep.add_argument("sweep", help="path to a sweep spec (see examples/sweeps/)")
    sweep.add_argument(
        "--tiny", action="store_true",
        help="smoke-test mode: capped clip length/resolution, one replicate "
        "(still deterministic)",
    )
    sweep.add_argument(
        # Mirrors repro.service.EXECUTOR_NAMES, like `run` (the executor
        # tests assert the two stay in sync).
        "--executor", choices=["serial", "thread", "process"], default=None,
        help="batch executor for the sweep (default: the sweep's executor)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="pool size (default: the sweep's workers)",
    )
    sweep.add_argument(
        "--out", default="sweep_reports",
        help="directory for the <name>.json / <name>.md artifacts "
        "(default: sweep_reports)",
    )
    sweep.add_argument(
        "--profile", action="store_true",
        help="collect a per-phase wall-clock breakdown across every cell "
        "(profiled cells always recompute; never part of the artifacts)",
    )

    sub.add_parser(
        "components", help="list registered detectors/classifiers/sources/policies"
    )

    sub.add_parser("experiments", help="list reproducible paper artifacts")

    costs = sub.add_parser("costs", help="evaluate the Table 1 cost model")
    costs.add_argument("--width", type=int, default=2560)
    costs.add_argument("--height", type=int, default=1920)
    costs.add_argument("--k", type=int, default=8)
    costs.add_argument("--roi", type=int, default=112, help="ROI side in px")
    costs.add_argument("--n-rois", type=int, default=16)
    costs.add_argument("--gray", action="store_true", help="grayscale stage 1")

    compare = sub.add_parser("compare", help="run both pipelines on a scene")
    compare.add_argument("--width", type=int, default=1280)
    compare.add_argument("--height", type=int, default=960)
    compare.add_argument("--k", type=int, default=4)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--gray", action="store_true", help="grayscale stage 1")
    compare.add_argument(
        "--score-threshold", type=float, default=0.0,
        help="minimum stage-1 confidence for an ROI to be read out",
    )

    circuit = sub.add_parser("circuit", help="DC-solve the averaging circuit")
    circuit.add_argument("--inputs", type=int, default=12)
    circuit.add_argument("--level", type=float, default=0.5)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "sweep": _cmd_sweep,
        "components": _cmd_components,
        "experiments": _cmd_experiments,
        "costs": _cmd_costs,
        "compare": _cmd_compare,
        "circuit": _cmd_circuit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
