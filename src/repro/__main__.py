"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — serve a JSON service spec through the :class:`~repro.service.Engine`;
* ``serve`` — run the long-lived serving daemon (:mod:`repro.server`)
  for a spec: one warm executor + cache behind a socket;
* ``request`` — send one scenario to a running daemon (whole-result or
  ``--stream``), or probe it (``--ping`` / ``--stats`` / ``--shutdown``);
* ``sweep`` — run a declarative experiment sweep and emit its paper-style
  JSON + markdown report (``repro.experiments``);
* ``cache`` — inspect or maintain an on-disk artifact store
  (``stats`` / ``gc`` / ``clear``); ``run``/``serve``/``sweep`` attach
  one via ``--store-dir`` so warm state survives restarts;
* ``components`` — list every registered detector/classifier/source/policy;
* ``experiments`` — list every reproducible paper artifact and its bench;
* ``costs`` — evaluate the Table 1 cost model for one configuration;
* ``compare`` — run both pipelines on a synthetic scene and print the
  reduction report;
* ``circuit`` — solve the analog averaging circuit's DC point;
* ``lint`` — check the repo's determinism/concurrency/spec invariants
  with the AST linter (``repro.lint``); exit code 1 on findings.
"""

from __future__ import annotations

import argparse
import sys


def _open_store(store_dir):
    """Build the optional on-disk store behind ``--store-dir`` (or None)."""
    if store_dir is None:
        return None
    from .store import ArtifactStore

    return ArtifactStore(store_dir)


def _cmd_run(args: argparse.Namespace) -> int:
    from .faults import FaultPlanError
    from .service import Engine, EngineCache, SpecError

    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    try:
        engine = Engine.from_spec(args.spec, faults=args.fault_plan)
        store = _open_store(args.store_dir)
    except (SpecError, FaultPlanError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if store is not None:
        # The engine is freshly built (nothing cached yet), so swapping in
        # a store-backed cache is safe.
        engine.cache = EngineCache(store=store)
    engine.profile = args.profile
    if not engine.scenarios:
        print(
            f"error: {args.spec}: spec has no scenarios to run "
            "(add a top-level \"scenarios\" list)",
            file=sys.stderr,
        )
        return 2
    try:
        batch = engine.run_batch(workers=args.workers, executor=args.executor)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for result in batch:
        print(result.report())
        print()
    print(batch.report())
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .server import ReproServer
    from .service import SpecError

    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    try:
        server = ReproServer(
            args.spec,
            host=args.host,
            port=args.port,
            queue_size=args.queue_size,
            workers=args.workers,
            executor=args.executor,
            request_timeout_s=args.timeout,
            store=_open_store(args.store_dir),
            faults=args.fault_plan,
        )
        server.start()
    except (SpecError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    host, port = server.address
    if args.store_dir is not None:
        print(f"store: {args.store_dir}", flush=True)
    # CI and scripts poll for this exact line as the readiness signal.
    print(f"serving {host}:{port} ({server.executor.name} executor x "
          f"{server.workers} worker(s), queue {args.queue_size})", flush=True)

    interrupted = threading.Event()

    def _on_signal(_signum, _frame):
        interrupted.set()

    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, _on_signal)
    # Wake periodically so a signal can break the wait; a client-sent
    # shutdown frame ends the wait by itself.
    while not server.wait(timeout=0.2):
        if interrupted.is_set():
            print("draining...", flush=True)
            server.shutdown(drain=True)
            break
    print("stopped", flush=True)
    return 0


def _cmd_request(args: argparse.Namespace) -> int:
    import json

    from .server import ServerClient, ServerError
    from .service import ScenarioSpec, SpecError

    probes = sum(bool(flag) for flag in (args.ping, args.stats, args.shutdown))
    if probes > 1:
        print("error: --ping/--stats/--shutdown are mutually exclusive",
              file=sys.stderr)
        return 2
    if probes == 0 and args.scenario is None:
        print("error: a scenario file is required unless probing with "
              "--ping/--stats/--shutdown", file=sys.stderr)
        return 2
    if args.retries < 0:
        print(f"error: --retries must be >= 0, got {args.retries}", file=sys.stderr)
        return 2
    try:
        with ServerClient(args.host, args.port, max_retries=args.retries) as client:
            if args.ping:
                print(f"pong (repro {client.ping()})")
                return 0
            if args.stats:
                stats = client.stats()
                print(f"requests served: {stats.requests_served}")
                print(f"queue depth    : {stats.queue_depth}")
                print(f"draining       : {stats.draining}")
                for tier, counters in stats.cache.items():
                    parts = []
                    if "hits" in counters:
                        parts.append(f"{counters['hits']} hit(s) / "
                                     f"{counters.get('misses', 0)} miss(es)")
                    if counters.get("disk_hits") or counters.get("disk_misses"):
                        parts.append(f"disk {counters['disk_hits']} hit(s) / "
                                     f"{counters['disk_misses']} miss(es)")
                    if "writes" in counters:
                        parts.append(f"{counters['writes']} write(s)")
                    if "evictions" in counters:
                        parts.append(f"{counters['evictions']} evicted")
                    if "entries" in counters:
                        entries = counters["entries"]
                        parts.append(
                            f"{entries} entr{'y' if entries == 1 else 'ies'}, "
                            f"{counters.get('bytes', 0) / 1024:.1f} kB")
                    print(f"cache[{tier}]: " + ", ".join(parts))
                for group, counters in stats.resilience.items():
                    rows = ", ".join(
                        f"{counter}={value}"
                        for counter, value in sorted(counters.items())
                    )
                    print(f"resilience[{group}]: {rows or 'none'}")
                return 0
            if args.shutdown:
                print(client.shutdown(drain=not args.no_drain))
                return 0
            try:
                with open(args.scenario, encoding="utf-8") as handle:
                    data = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: {args.scenario}: {exc}", file=sys.stderr)
                return 2
            # Accept a bare scenario object or a service spec file (take
            # the --index'th entry of its "scenarios" list).
            if isinstance(data, dict) and "scenarios" in data:
                scenarios = data["scenarios"]
                if not isinstance(scenarios, list) or not scenarios:
                    print(f"error: {args.scenario}: \"scenarios\" must be a "
                          "non-empty list", file=sys.stderr)
                    return 2
                if not 0 <= args.index < len(scenarios):
                    print(f"error: --index {args.index} out of range "
                          f"(spec has {len(scenarios)} scenario(s))",
                          file=sys.stderr)
                    return 2
                data = scenarios[args.index]
            try:
                scenario = ScenarioSpec.from_dict(data)
            except SpecError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if args.stream:
                def on_stats(stats):
                    print(f"frame {stats.frame_index}: "
                          f"{'stage1' if stats.ran_stage1 else 'reuse'}"
                          f"{f' ({stats.reason})' if stats.reason else ''}, "
                          f"{stats.n_rois} ROI(s), "
                          f"{stats.total_bytes} B, "
                          f"{stats.energy_j * 1e6:.2f} uJ", flush=True)

                result = client.run_streaming(
                    scenario, on_stats=on_stats, timeout_s=args.timeout
                )
            else:
                result = client.run(scenario, timeout_s=args.timeout)
    except ServerError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        return 1
    except (OSError, ConnectionError) as exc:
        print(f"error: cannot reach daemon at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(result.report())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments import SweepRunner, build_report, load_sweep, write_report
    from .service import SpecError

    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    try:
        # load_sweep folds unreadable files into SpecError itself
        spec = load_sweep(args.sweep)
        if args.tiny:
            spec = spec.tiny()
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    runner = SweepRunner(
        spec,
        executor=args.executor,
        workers=args.workers,
        profile=args.profile,
        store=_open_store(args.store_dir),
    )
    try:
        result = runner.run()
        report = build_report(result)
    except (SpecError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(report.markdown)
    print()
    print(result.describe())
    if result.profile is not None:
        print("  phase breakdown (all cells):")
        print(result.profile.report())
    try:
        json_path, md_path = write_report(report, args.out)
    except OSError as exc:
        print(f"error: cannot write report to {args.out}: {exc}", file=sys.stderr)
        return 2
    print(f"  wrote {json_path} and {md_path}")
    failed = report.failed_trends
    if failed:
        for trend in failed:
            print(f"error: trend check failed: {trend.name}: {trend.detail}",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from .store import ArtifactStore

    try:
        store = ArtifactStore(args.store_dir)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "stats":
        print(store.snapshot().describe())
        return 0
    if args.action == "gc":
        if args.max_bytes < 0:
            print(f"error: --max-bytes must be >= 0, got {args.max_bytes}",
                  file=sys.stderr)
            return 2
        removed, freed = store.gc(args.max_bytes)
        print(f"gc: removed {removed} object(s), freed {freed / 1024:.1f} kB "
              f"(budget {args.max_bytes} B)")
        return 0
    # clear
    removed, freed = store.clear()
    print(f"clear: removed {removed} object(s), freed {freed / 1024:.1f} kB")
    return 0


def _cmd_components(_args: argparse.Namespace) -> int:
    from .service import list_components

    for kind, names in list_components().items():
        print(f"{kind}:")
        for name in names:
            print(f"  {name}")
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    from .bench import EXPERIMENTS

    for exp in EXPERIMENTS.values():
        print(f"{exp.exp_id:<8} {exp.paper_ref:<8} {exp.bench}")
        print(f"         {exp.description}")
    return 0


def _cmd_costs(args: argparse.Namespace) -> int:
    from .core import format_bytes, hirise_costs

    rois = [(args.roi, args.roi)] * args.n_rois
    breakdown = hirise_costs(
        args.width, args.height, args.k, rois, grayscale=args.gray
    )
    conv = breakdown.conventional
    print(f"pixel array {args.width}x{args.height}, k={args.k}, "
          f"{args.n_rois} ROIs of {args.roi}x{args.roi}, "
          f"stage-1 {'gray' if args.gray else 'RGB'}")
    print(f"  baseline transfer : {format_bytes(conv.data_transfer_bytes)}")
    print(f"  HiRISE transfer   : {format_bytes(breakdown.hirise_transfer_bits / 8)} "
          f"({breakdown.transfer_reduction:.1f}x less)")
    print(f"  baseline memory   : {format_bytes(conv.memory_bytes)}")
    print(f"  HiRISE peak memory: {format_bytes(breakdown.hirise_peak_memory_bits / 8)} "
          f"({breakdown.memory_reduction:.1f}x less)")
    print(f"  ADC conversions   : {conv.adc_conversions:,} -> "
          f"{breakdown.hirise_conversions:,} ({breakdown.conversion_reduction:.1f}x less)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .core import (
        ConventionalPipeline,
        HiRISEConfig,
        HiRISEPipeline,
        ROI,
        comparison_report,
    )
    from .datasets import crowdhuman_like

    config = HiRISEConfig(
        pool_k=args.k,
        grayscale_stage1=args.gray,
        score_threshold=args.score_threshold,
    )
    scene = crowdhuman_like(1, resolution=(args.width, args.height), seed=args.seed)[0]
    rois = [
        ROI(int(b.x), int(b.y), max(int(b.w), 2), max(int(b.h), 2), 0.9, "head")
        for b in scene.boxes_for("head")
    ]
    hirise = HiRISEPipeline(config=config).run(scene.image, rois=rois)
    baseline = ConventionalPipeline().run(scene.image, rois=rois)
    print(comparison_report(hirise, baseline))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .lint.cli import run

    return run(
        paths=args.paths, fmt=args.format, rules=args.rule, out=args.out
    )


def _cmd_circuit(args: argparse.Namespace) -> int:
    from .analog import AVG_NODE, DC, MNASolver, build_pooling_circuit

    circuit = build_pooling_circuit([DC(args.level)] * args.inputs)
    solution = MNASolver(circuit).dc()
    print(f"{args.inputs} inputs at {args.level} V -> shared node "
          f"{solution[AVG_NODE]:+.4f} V")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro", description="HiRISE (DAC 2024) reproduction toolkit"
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="serve a JSON service spec via the Engine")
    run.add_argument("spec", help="path to a service spec (see examples/specs/)")
    run.add_argument(
        "--workers", type=int, default=None,
        help="pool size for the batch (default: the spec's workers)",
    )
    run.add_argument(
        # Mirrors repro.service.EXECUTOR_NAMES (not imported here: parser
        # construction must stay cheap for non-service commands); the
        # executor tests assert the two stay in sync.
        "--executor", choices=["serial", "thread", "process"], default=None,
        help="batch executor (default: the spec's executor; process = "
        "spawn-safe multi-core pool for CPU-bound fleets)",
    )
    run.add_argument(
        "--profile", action="store_true",
        help="collect a per-phase wall-clock breakdown for every request "
        "(expose / stage1.read / detect / condition / stage2.read / "
        "stage2.classify); profiled requests always recompute",
    )
    run.add_argument(
        "--store-dir", default=None,
        help="attach a persistent on-disk cache tier rooted here: previous "
        "runs' clips and results are reused, this run's are persisted",
    )
    run.add_argument(
        "--fault-plan", default=None,
        help="arm a deterministic fault-injection plan (path to a JSON "
        "FaultPlan; chaos testing — see repro.faults)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the serving daemon: one warm executor + cache behind a socket",
    )
    serve.add_argument("spec", help="path to a service spec (see examples/specs/)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=0,
        help="bind port (default 0 = pick a free port, printed on startup)",
    )
    serve.add_argument(
        "--queue-size", type=int, default=16,
        help="admission bound: requests waiting beyond this are rejected "
        "with a typed queue-full error (default 16)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="serving concurrency (default: the spec's workers)",
    )
    serve.add_argument(
        # Mirrors repro.service.EXECUTOR_NAMES, like `run` (the executor
        # tests assert the two stay in sync).
        "--executor", choices=["serial", "thread", "process"], default=None,
        help="warm executor for non-streaming requests "
        "(default: the spec's executor)",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request deadline in seconds (default: none)",
    )
    serve.add_argument(
        "--store-dir", default=None,
        help="attach a persistent on-disk cache tier rooted here: a "
        "restarted daemon serves what a previous one computed as pure "
        "cache hits, bit-identical",
    )
    serve.add_argument(
        "--fault-plan", default=None,
        help="arm a deterministic fault-injection plan (path to a JSON "
        "FaultPlan) on the daemon's reply/stream/worker sites; injected "
        "fault counters show up under `repro request --stats`",
    )

    request = sub.add_parser(
        "request", help="send one scenario to a running daemon, or probe it"
    )
    request.add_argument(
        "scenario", nargs="?", default=None,
        help="path to a scenario JSON (or a service spec file; --index "
        "selects from its \"scenarios\" list)",
    )
    request.add_argument("--host", default="127.0.0.1", help="daemon address")
    request.add_argument("--port", type=int, required=True, help="daemon port")
    request.add_argument(
        "--index", type=int, default=0,
        help="scenario index when the file is a service spec (default 0)",
    )
    request.add_argument(
        "--stream", action="store_true",
        help="stream per-frame ledger rows as they land instead of one "
        "whole-result reply",
    )
    request.add_argument(
        "--timeout", type=float, default=None,
        help="per-request deadline in seconds (default: the daemon's)",
    )
    request.add_argument(
        "--ping", action="store_true", help="liveness probe (no scenario)"
    )
    request.add_argument(
        "--stats", action="store_true",
        help="print the daemon's queue/cache counters (no scenario)",
    )
    request.add_argument(
        "--shutdown", action="store_true",
        help="ask the daemon to stop, draining in-flight work (no scenario)",
    )
    request.add_argument(
        "--no-drain", action="store_true",
        help="with --shutdown: cancel queued requests instead of draining",
    )
    request.add_argument(
        "--retries", type=int, default=0,
        help="transparently retry backpressure rejections and dropped "
        "connections up to N times with capped exponential backoff "
        "(default 0 = fail fast)",
    )

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative experiment sweep and emit its report "
        "(see examples/sweeps/)",
    )
    sweep.add_argument("sweep", help="path to a sweep spec (see examples/sweeps/)")
    sweep.add_argument(
        "--tiny", action="store_true",
        help="smoke-test mode: capped clip length/resolution, one replicate "
        "(still deterministic)",
    )
    sweep.add_argument(
        # Mirrors repro.service.EXECUTOR_NAMES, like `run` (the executor
        # tests assert the two stay in sync).
        "--executor", choices=["serial", "thread", "process"], default=None,
        help="batch executor for the sweep (default: the sweep's executor)",
    )
    sweep.add_argument(
        "--workers", type=int, default=None,
        help="pool size (default: the sweep's workers)",
    )
    sweep.add_argument(
        "--out", default="sweep_reports",
        help="directory for the <name>.json / <name>.md artifacts "
        "(default: sweep_reports)",
    )
    sweep.add_argument(
        "--profile", action="store_true",
        help="collect a per-phase wall-clock breakdown across every cell "
        "(profiled cells always recompute; never part of the artifacts)",
    )
    sweep.add_argument(
        "--store-dir", default=None,
        help="attach a persistent on-disk cache tier rooted here: a "
        "re-run sweep resumes from what previous runs computed",
    )

    cache = sub.add_parser(
        "cache", help="inspect or maintain an on-disk artifact store"
    )
    cache_sub = cache.add_subparsers(dest="action", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="print the store's entry counts, byte sizes, and counters"
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="evict least-recently-used objects down to a byte budget"
    )
    cache_gc.add_argument(
        "--max-bytes", type=int, required=True,
        help="byte budget to collect down to (0 = remove everything)",
    )
    cache_clear = cache_sub.add_parser(
        "clear", help="remove every stored object"
    )
    for sub_cache in (cache_stats, cache_gc, cache_clear):
        sub_cache.add_argument(
            "--store-dir", required=True,
            help="store root (the directory passed to run/serve/sweep)",
        )

    sub.add_parser(
        "components", help="list registered detectors/classifiers/sources/policies"
    )

    sub.add_parser("experiments", help="list reproducible paper artifacts")

    costs = sub.add_parser("costs", help="evaluate the Table 1 cost model")
    costs.add_argument("--width", type=int, default=2560)
    costs.add_argument("--height", type=int, default=1920)
    costs.add_argument("--k", type=int, default=8)
    costs.add_argument("--roi", type=int, default=112, help="ROI side in px")
    costs.add_argument("--n-rois", type=int, default=16)
    costs.add_argument("--gray", action="store_true", help="grayscale stage 1")

    compare = sub.add_parser("compare", help="run both pipelines on a scene")
    compare.add_argument("--width", type=int, default=1280)
    compare.add_argument("--height", type=int, default=960)
    compare.add_argument("--k", type=int, default=4)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--gray", action="store_true", help="grayscale stage 1")
    compare.add_argument(
        "--score-threshold", type=float, default=0.0,
        help="minimum stage-1 confidence for an ROI to be read out",
    )

    circuit = sub.add_parser("circuit", help="DC-solve the averaging circuit")
    circuit.add_argument("--inputs", type=int, default=12)
    circuit.add_argument("--level", type=float, default=0.5)

    lint = sub.add_parser(
        "lint", help="check the repo's determinism/concurrency invariants"
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src benchmarks tools)",
    )
    lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is sorted and byte-stable)",
    )
    lint.add_argument(
        "--rule", action="append", metavar="RULE_ID",
        help="run only this rule id (repeatable)",
    )
    lint.add_argument(
        "--out", metavar="FILE",
        help="also write the JSON report to FILE (for CI artifacts)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "serve": _cmd_serve,
        "request": _cmd_request,
        "sweep": _cmd_sweep,
        "cache": _cmd_cache,
        "components": _cmd_components,
        "experiments": _cmd_experiments,
        "costs": _cmd_costs,
        "compare": _cmd_compare,
        "circuit": _cmd_circuit,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
