"""Procedural textures: the source of "rich features" in synthetic scenes.

The paper's motivation (Fig. 1) is that high-resolution ROIs preserve rich
texture — hair, fabric, facial detail — that pooling destroys.  For the
reproduction to exercise the same trade-off, synthetic objects must carry
fine-grained, high-frequency texture that aliases away at low resolution.
This module provides deterministic, seedable texture fields:

* :func:`value_noise` — multi-octave bilinear value noise (Perlin-flavored);
* :func:`stripes` / :func:`checker` — periodic patterns with controllable
  pitch (fine pitches vanish under pooling);
* :func:`speckle` — per-pixel white noise for sensor-plausible micro-detail.

All functions return float64 arrays in [0, 1].
"""

from __future__ import annotations

import numpy as np


def _bilinear_upsample(grid: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Bilinearly resample a coarse grid to ``shape`` (used by value noise)."""
    gh, gw = grid.shape
    h, w = shape
    # Sample positions in grid coordinates; endpoints map exactly.
    ys = np.linspace(0.0, gh - 1.0, h)
    xs = np.linspace(0.0, gw - 1.0, w)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, gh - 1)
    x1 = np.minimum(x0 + 1, gw - 1)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    top = grid[np.ix_(y0, x0)] * (1 - fx) + grid[np.ix_(y0, x1)] * fx
    bottom = grid[np.ix_(y1, x0)] * (1 - fx) + grid[np.ix_(y1, x1)] * fx
    return top * (1 - fy) + bottom * fy


def value_noise(
    shape: tuple[int, int],
    rng: np.random.Generator,
    octaves: int = 4,
    base_cells: int = 4,
    persistence: float = 0.55,
) -> np.ndarray:
    """Multi-octave value noise in [0, 1].

    Args:
        shape: output ``(H, W)``.
        rng: random generator (advance-once semantics: each call consumes
            randomness, so repeated calls differ).
        octaves: number of frequency octaves to sum.
        base_cells: grid cells of the coarsest octave along the short side.
        persistence: amplitude falloff per octave.

    Returns:
        ``(H, W)`` float64 noise normalized to [0, 1].
    """
    h, w = shape
    total = np.zeros(shape)
    amplitude = 1.0
    norm = 0.0
    cells = base_cells
    for _ in range(octaves):
        gh = max(2, min(h, int(round(cells * h / min(h, w)))))
        gw = max(2, min(w, int(round(cells * w / min(h, w)))))
        grid = rng.random((gh, gw))
        total += amplitude * _bilinear_upsample(grid, shape)
        norm += amplitude
        amplitude *= persistence
        cells *= 2
    total /= norm
    lo, hi = float(total.min()), float(total.max())
    if hi > lo:
        total = (total - lo) / (hi - lo)
    return total


def stripes(
    shape: tuple[int, int],
    pitch: float,
    angle_deg: float = 0.0,
    duty: float = 0.5,
    soft: float = 0.15,
) -> np.ndarray:
    """Smoothed periodic stripes in [0, 1].

    Args:
        shape: output ``(H, W)``.
        pitch: stripe period in pixels (small pitch = fine texture that a
            k x k pool with ``k >= pitch/2`` wipes out).
        angle_deg: stripe orientation.
        duty: bright fraction of each period.
        soft: transition softness as a fraction of the period.

    Returns:
        ``(H, W)`` float64 pattern.
    """
    if pitch <= 0:
        raise ValueError("pitch must be positive")
    h, w = shape
    yy, xx = np.mgrid[0:h, 0:w]
    theta = np.deg2rad(angle_deg)
    coord = xx * np.cos(theta) + yy * np.sin(theta)
    phase = (coord / pitch) % 1.0
    edge0, edge1 = duty - soft, duty + soft
    out = np.clip((edge1 - phase) / max(edge1 - edge0, 1e-9), 0.0, 1.0)
    return out


def checker(shape: tuple[int, int], cell: int) -> np.ndarray:
    """Binary checkerboard with ``cell``-pixel squares."""
    if cell < 1:
        raise ValueError("cell must be >= 1")
    h, w = shape
    yy, xx = np.mgrid[0:h, 0:w]
    return (((yy // cell) + (xx // cell)) % 2).astype(np.float64)


def speckle(
    shape: tuple[int, int], rng: np.random.Generator, strength: float = 1.0
) -> np.ndarray:
    """Per-pixel uniform noise scaled to ``strength``, centered at 0.5."""
    return 0.5 + strength * (rng.random(shape) - 0.5)


def colorize(field: np.ndarray, low: tuple, high: tuple) -> np.ndarray:
    """Map a [0, 1] scalar field to an RGB ramp between two colors.

    Args:
        field: ``(H, W)`` scalar texture.
        low: RGB color (floats in [0, 1]) at field value 0.
        high: RGB color at field value 1.

    Returns:
        ``(H, W, 3)`` float64 image.
    """
    low_arr = np.asarray(low, dtype=np.float64)
    high_arr = np.asarray(high, dtype=np.float64)
    return field[:, :, None] * (high_arr - low_arr) + low_arr
