"""Scene containers and the detection-scene generator.

A :class:`Scene` is one synthetic exposure: a float RGB image in [0, 1] plus
ground-truth :class:`GroundTruthBox` annotations.  The
:class:`SceneGenerator` renders scenes according to a
:class:`~repro.datasets.profiles.DatasetProfile`, which encodes the
statistics that matter to the HiRISE experiments: object count, object
scale, how much detectability relies on color, and which classes exist.

Backgrounds are procedural (plaza / campus / aerial) with multi-octave
texture so that pooling has something to destroy.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field, replace

import numpy as np

from .profiles import DatasetProfile
from .shapes import draw_cyclist, draw_person, draw_vehicle
from .textures import colorize, value_noise


@dataclass(frozen=True)
class GroundTruthBox:
    """An annotated object: class label plus ``(x, y, w, h)`` in pixels."""

    label: str
    x: float
    y: float
    w: float
    h: float

    @property
    def area(self) -> float:
        return self.w * self.h

    @property
    def xywh(self) -> tuple[float, float, float, float]:
        return (self.x, self.y, self.w, self.h)

    def scaled(self, sx: float, sy: float) -> "GroundTruthBox":
        """The same box in a resized image (sx, sy are the scale factors)."""
        return replace(self, x=self.x * sx, y=self.y * sy, w=self.w * sx, h=self.h * sy)


@dataclass
class Scene:
    """One synthetic exposure with annotations.

    Attributes:
        image: float64 ``(H, W, 3)`` in [0, 1].
        boxes: ground-truth boxes in image pixel coordinates.
        name: identifier (dataset/profile + index).
    """

    image: np.ndarray
    boxes: list[GroundTruthBox] = field(default_factory=list)
    name: str = "scene"

    @property
    def resolution(self) -> tuple[int, int]:
        """``(width, height)``."""
        return (int(self.image.shape[1]), int(self.image.shape[0]))

    def boxes_for(self, label: str) -> list[GroundTruthBox]:
        return [b for b in self.boxes if b.label == label]

    def total_box_area(self, labels: tuple[str, ...] | None = None) -> float:
        """Sum of box areas (pixel^2), optionally restricted to ``labels``."""
        boxes = self.boxes if labels is None else [b for b in self.boxes if b.label in labels]
        return float(sum(b.area for b in boxes))


def _background(
    profile: DatasetProfile, shape: tuple[int, int], rng: np.random.Generator
) -> np.ndarray:
    """Render the profile's backdrop."""
    h, w = shape
    base = value_noise(shape, rng, octaves=4, base_cells=3)
    if profile.background == "plaza":
        canvas = colorize(base, (0.52, 0.50, 0.48), (0.68, 0.66, 0.63))
        # Paving joints: subtle grid lines.
        pitch = max(min(h, w) // 14, 8)
        canvas[::pitch, :, :] *= 0.88
        canvas[:, ::pitch, :] *= 0.88
    elif profile.background == "campus":
        grass = colorize(base, (0.28, 0.42, 0.22), (0.40, 0.55, 0.30))
        path = colorize(value_noise(shape, rng, octaves=3), (0.55, 0.52, 0.48), (0.66, 0.63, 0.58))
        mask = value_noise(shape, rng, octaves=2, base_cells=2) > 0.62
        canvas = np.where(mask[:, :, None], path, grass)
    elif profile.background == "aerial":
        canvas = colorize(base, (0.38, 0.38, 0.40), (0.52, 0.52, 0.54))
        # Road grid with lane lines.
        road_w = max(min(h, w) // 12, 6)
        n_h = max(h // (road_w * 5), 1)
        n_v = max(w // (road_w * 5), 1)
        road = np.asarray((0.22, 0.22, 0.24))
        for i in range(1, n_h + 1):
            y = int(i * h / (n_h + 1))
            canvas[max(y - road_w // 2, 0) : y + road_w // 2, :, :] = road
            canvas[y, ::7, :] = (0.8, 0.8, 0.75)
        for i in range(1, n_v + 1):
            x = int(i * w / (n_v + 1))
            canvas[:, max(x - road_w // 2, 0) : x + road_w // 2, :] = road
            canvas[::7, x, :] = (0.8, 0.8, 0.75)
    else:
        raise ValueError(f"unknown background style {profile.background!r}")
    return np.clip(canvas, 0.0, 1.0)


class SceneGenerator:
    """Renders detection scenes following a dataset profile.

    Placement uses best-effort overlap rejection: candidates whose center
    falls too close to an existing object's center are resampled a few
    times, then accepted anyway (real crowd datasets contain occlusion).

    Args:
        profile: dataset statistics to follow.
        resolution: ``(width, height)`` of the rendered frames.
        seed: base seed; image ``i`` uses an independent child seed.
    """

    def __init__(
        self,
        profile: DatasetProfile,
        resolution: tuple[int, int] = (1280, 960),
        seed: int = 0,
    ):
        if resolution[0] < 32 or resolution[1] < 32:
            raise ValueError("resolution must be at least 32x32")
        self.profile = profile
        self.resolution = resolution
        self.seed = seed

    def generate(self, n_images: int) -> list[Scene]:
        """Render ``n_images`` scenes deterministically."""
        return [self.scene(i) for i in range(n_images)]

    def scene(self, index: int) -> Scene:
        """Render scene ``index`` (stable across calls)."""
        # zlib.crc32 is stable across processes (unlike hash(), which is
        # randomized per interpreter and would make scenes irreproducible).
        profile_tag = zlib.crc32(self.profile.name.encode())
        rng = np.random.default_rng((self.seed, index, profile_tag))
        w, h = self.resolution
        canvas = _background(self.profile, (h, w), rng)
        background_luma = float((canvas @ np.array([0.299, 0.587, 0.114])).mean())

        lo, hi = self.profile.objects_per_image
        n_objects = int(rng.integers(lo, hi + 1))
        boxes: list[GroundTruthBox] = []
        centers: list[tuple[float, float]] = []

        for _ in range(n_objects):
            label = self.profile.classes[rng.integers(len(self.profile.classes))]
            s_lo, s_hi = self.profile.object_scale
            size = float(rng.uniform(s_lo, s_hi)) * h
            placed = self._place(rng, w, h, size, centers)
            if placed is None:
                continue
            cx, cy = placed
            centers.append((cx, cy))
            boxes.extend(
                self._draw_object(canvas, rng, label, cx, cy, size, background_luma)
            )
        return Scene(
            image=canvas,
            boxes=boxes,
            name=f"{self.profile.name}-{self.resolution[0]}x{self.resolution[1]}-{index:04d}",
        )

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _place(
        rng: np.random.Generator,
        w: int,
        h: int,
        size: float,
        centers: list[tuple[float, float]],
        attempts: int = 8,
    ) -> tuple[float, float] | None:
        margin = size * 0.6
        for _ in range(attempts):
            cx = float(rng.uniform(margin, max(w - margin, margin + 1)))
            cy = float(rng.uniform(margin, max(h - margin, margin + 1)))
            if all((cx - ox) ** 2 + (cy - oy) ** 2 > (0.5 * size) ** 2 for ox, oy in centers):
                return cx, cy
        return cx, cy  # accept the last candidate; crowds occlude

    def _draw_object(
        self,
        canvas: np.ndarray,
        rng: np.random.Generator,
        label: str,
        cx: float,
        cy: float,
        size: float,
        background_luma: float,
    ) -> list[GroundTruthBox]:
        dep = self.profile.color_dependence
        if label == "person":
            body, head = draw_person(
                canvas, rng, cx, cy - size / 2.0, size, dep, background_luma
            )
            out = [GroundTruthBox("person", *body)]
            if self.profile.head_boxes:
                out.append(GroundTruthBox("head", *head))
            return out
        if label == "pedestrian":
            body, _ = draw_person(
                canvas, rng, cx, cy - size / 2.0, size, dep, background_luma
            )
            return [GroundTruthBox("pedestrian", *body)]
        if label == "cyclist":
            box = draw_cyclist(
                canvas, rng, cx, cy - size / 2.0, size, dep, background_luma
            )
            return [GroundTruthBox("cyclist", *box)]
        if label == "people":
            # VisDrone 'people' = non-standing humans; render shorter.
            body, _ = draw_person(
                canvas, rng, cx, cy - size * 0.35, size * 0.7, dep, background_luma
            )
            return [GroundTruthBox("people", *body)]
        # Remaining classes are vehicles (top-down).
        box = draw_vehicle(canvas, rng, label, cx, cy, size * 1.6)
        return [GroundTruthBox(label, *box)]
