"""CrowdHuman-like synthetic dataset (crowded people, person + head boxes).

Stand-in for Shao et al., *CrowdHuman: A Benchmark for Detecting Human in a
Crowd* (2018).  See :mod:`repro.datasets.profiles` for the statistics the
profile matches and DESIGN.md for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from .profiles import CROWDHUMAN_LIKE
from .scene import Scene, SceneGenerator


def crowdhuman_like(
    n_images: int,
    resolution: tuple[int, int] = (2560, 1920),
    seed: int = 0,
) -> list[Scene]:
    """Generate CrowdHuman-like scenes.

    Args:
        n_images: number of frames.
        resolution: ``(width, height)`` of the pixel array.
        seed: dataset seed.

    Returns:
        List of :class:`~repro.datasets.scene.Scene` with ``person`` and
        ``head`` ground-truth boxes.
    """
    return SceneGenerator(CROWDHUMAN_LIKE, resolution, seed).generate(n_images)


def median_head_count(scenes: list[Scene]) -> float:
    """Median number of head boxes per frame (paper's Table 3 statistic)."""
    counts = [len(s.boxes_for("head")) for s in scenes]
    return float(np.median(counts)) if counts else 0.0


def median_body_area_fraction(scenes: list[Scene]) -> float:
    """Median of (sum of person-box areas / frame area) — Fig. 7's load."""
    fractions = []
    for s in scenes:
        w, h = s.resolution
        fractions.append(s.total_box_area(("person",)) / float(w * h))
    return float(np.median(fractions)) if fractions else 0.0
