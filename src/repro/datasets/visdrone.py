"""VisDrone-like synthetic dataset (aerial urban scenes, 10 tiny classes).

Stand-in for Zhu et al., *Vision Meets Drones: A Challenge* (2018): drone
imagery over urban environments with ten object categories, most of them
only tens of pixels across even at high resolution — the dataset where the
paper sees accuracy more than double between 320x240 and 1280x960.
"""

from __future__ import annotations

from .profiles import VISDRONE_LIKE
from .scene import Scene, SceneGenerator


def visdrone_like(
    n_images: int,
    resolution: tuple[int, int] = (2560, 1920),
    seed: int = 0,
) -> list[Scene]:
    """Generate VisDrone-like scenes.

    Args:
        n_images: number of frames.
        resolution: ``(width, height)`` of the pixel array.
        seed: dataset seed.

    Returns:
        List of :class:`~repro.datasets.scene.Scene` with boxes for the ten
        VisDrone categories.
    """
    return SceneGenerator(VISDRONE_LIKE, resolution, seed).generate(n_images)
