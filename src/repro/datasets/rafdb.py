"""RAF-DB-like synthetic facial-expression dataset (7 classes).

The paper's end-to-end experiment (Table 3) trains an expression classifier
on RAF-DB crops whose resolution equals the detected head ROI (14x14 at a
320x240 array up to 112x112 at 2560x1920) and shows accuracy climbing with
ROI size.  That trend requires expression cues that live at *different
spatial frequencies*: coarse cues (mouth open/closed) survive 28x28, while
fine cues (brow angle, eye aperture, mouth curvature) need 56-112 px.

Faces here are rendered procedurally at a fixed canonical resolution
(:data:`CANONICAL_SIZE` = 224) and then area-downsampled to the requested
ROI size — exactly how an optical face image hits a coarser pixel grid, so
resolution is the *only* thing that changes across Table 3 rows.

Expression geometry (exaggerations of FACS action units):

==========  =============================================================
neutral     straight mouth, relaxed brows
happy       strong upward mouth curvature
sad         downward curvature + inner brows raised
surprise    wide-open mouth (tall ellipse) + raised brows + wide eyes
angry       inward/downward brow slant + compressed mouth
fear        open mouth (narrow) + raised brows + wide eyes
disgust     raised upper lip (mouth shifted up) + squinted eyes
==========  =============================================================
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .shapes import HAIR_COLORS, SKIN_TONES, fill_circle, fill_ellipse, fill_rect
from .textures import value_noise

#: Expression class names, label index = position.
EXPRESSIONS = ("neutral", "happy", "sad", "surprise", "angry", "fear", "disgust")

#: Canonical render size; ROI sizes must divide it (14, 28, 56, 112, 224).
CANONICAL_SIZE = 224


@dataclass(frozen=True)
class ExpressionParams:
    """Geometric knobs for one expression rendering.

    All values are in face-relative units (fractions of face size).
    """

    mouth_curve: float  # + = smile, - = frown
    mouth_open: float  # vertical mouth aperture
    mouth_width: float
    brow_raise: float  # + = raised
    brow_slant: float  # + = inner ends pulled down (anger)
    eye_open: float  # eye aperture multiplier
    mouth_shift: float = 0.0  # vertical mouth offset (+ = up, disgust)


_EXPRESSION_GEOMETRY: dict[str, ExpressionParams] = {
    "neutral": ExpressionParams(0.00, 0.012, 0.30, 0.00, 0.00, 1.00),
    "happy": ExpressionParams(0.09, 0.020, 0.36, 0.02, 0.00, 0.95),
    "sad": ExpressionParams(-0.07, 0.012, 0.28, 0.05, -0.12, 0.85),
    "surprise": ExpressionParams(0.00, 0.085, 0.22, 0.10, 0.00, 1.35),
    "angry": ExpressionParams(-0.03, 0.010, 0.30, -0.04, 0.22, 0.80),
    "fear": ExpressionParams(-0.02, 0.055, 0.24, 0.09, -0.05, 1.30),
    "disgust": ExpressionParams(-0.04, 0.018, 0.30, -0.02, 0.10, 0.60, 0.04),
}


def render_face(
    expression: str,
    rng: np.random.Generator,
    size: int = CANONICAL_SIZE,
) -> np.ndarray:
    """Render one face crop with the given expression.

    Identity (skin tone, face shape, hair, eye spacing) and pose jitter are
    sampled from ``rng``; expression geometry comes from the class with
    small per-sample jitter so classes overlap realistically.

    Args:
        expression: one of :data:`EXPRESSIONS`.
        rng: random generator (identity + jitter source).
        size: output side length in pixels.

    Returns:
        ``(size, size, 3)`` float64 image in [0, 1].
    """
    if expression not in _EXPRESSION_GEOMETRY:
        raise ValueError(f"unknown expression {expression!r}")
    p = _EXPRESSION_GEOMETRY[expression]

    def jit(value: float, sigma: float) -> float:
        return float(value + rng.normal(0.0, sigma))

    mouth_curve = jit(p.mouth_curve, 0.015)
    mouth_open = max(jit(p.mouth_open, 0.006), 0.004)
    mouth_width = jit(p.mouth_width, 0.02)
    brow_raise = jit(p.brow_raise, 0.012)
    brow_slant = jit(p.brow_slant, 0.03)
    eye_open = max(jit(p.eye_open, 0.08), 0.3)
    mouth_shift = jit(p.mouth_shift, 0.008)

    s = float(size)
    canvas = np.empty((size, size, 3))
    backdrop = value_noise((size, size), rng, octaves=3, base_cells=2)
    canvas[:] = (0.35 + 0.3 * backdrop)[:, :, None] * np.array([0.9, 0.95, 1.0])

    skin = np.asarray(SKIN_TONES[rng.integers(len(SKIN_TONES))])
    hair = np.asarray(HAIR_COLORS[rng.integers(len(HAIR_COLORS))])
    cx = s * jit(0.5, 0.01)
    cy = s * jit(0.52, 0.01)
    face_rx = s * jit(0.34, 0.015)
    face_ry = s * jit(0.42, 0.015)

    # Hair mass behind the face, then the face ellipse.
    fill_ellipse(canvas, cx, cy - face_ry * 0.25, face_rx * 1.18, face_ry * 0.95, hair)
    fill_ellipse(canvas, cx, cy, face_rx, face_ry, skin)
    # Hairline cap.
    fill_ellipse(canvas, cx, cy - face_ry * 0.72, face_rx * 0.95, face_ry * 0.38, hair)

    eye_dx = face_rx * jit(0.45, 0.02)
    eye_y = cy - face_ry * 0.12
    eye_rx = face_rx * 0.20
    eye_ry = face_rx * 0.085 * eye_open
    iris = np.asarray((0.15, 0.25, 0.35)) if rng.random() < 0.4 else np.asarray((0.22, 0.14, 0.08))
    for side in (-1.0, 1.0):
        ex = cx + side * eye_dx
        fill_ellipse(canvas, ex, eye_y, eye_rx, eye_ry, (0.97, 0.97, 0.96))
        fill_circle(canvas, ex, eye_y, min(eye_ry * 0.85, eye_rx * 0.45), iris)
        fill_circle(canvas, ex, eye_y, min(eye_ry * 0.4, eye_rx * 0.2), (0.03, 0.03, 0.03))
        # Brow: a thin slanted bar above the eye.
        brow_y = eye_y - face_ry * (0.16 + brow_raise)
        brow_len = eye_rx * 2.4
        brow_h = max(face_ry * 0.035, 1.0)
        n_seg = 7
        for seg in range(n_seg):
            # frac runs -0.5 (outer brow end) .. +0.5 (inner end, near nose);
            # positive slant pulls the inner end down (the anger cue).
            frac = seg / (n_seg - 1) - 0.5
            seg_x = ex - side * frac * brow_len
            seg_y = brow_y - brow_slant * face_ry * frac * side
            fill_rect(
                canvas, seg_x - brow_len / (2 * n_seg), seg_y - brow_h / 2,
                brow_len / n_seg + 1, brow_h, hair * 0.6,
            )

    # Nose: subtle vertical shading.
    fill_rect(canvas, cx - face_rx * 0.045, cy - face_ry * 0.05, face_rx * 0.09,
              face_ry * 0.3, skin * 0.88)

    # Mouth: Bezier-ish arc approximated by elliptical segments.
    mouth_y = cy + face_ry * (0.42 - mouth_shift)
    mw = face_rx * 2.0 * mouth_width
    lip = np.asarray((0.62, 0.25, 0.25))
    n_seg = 11
    for seg in range(n_seg):
        frac = seg / (n_seg - 1) - 0.5  # -0.5..0.5 across the mouth
        seg_x = cx + frac * mw
        seg_y = mouth_y - mouth_curve * s * (1.0 - (2.0 * frac) ** 2)
        seg_h = max(mouth_open * s * (1.0 - (2.0 * frac) ** 2) + s * 0.008, 1.0)
        fill_ellipse(canvas, seg_x, seg_y, mw / (1.6 * n_seg), seg_h / 2.0, lip)
    if mouth_open > 0.03:
        # Visible mouth interior for open expressions.
        fill_ellipse(canvas, cx, mouth_y - mouth_curve * s, mw * 0.28,
                     mouth_open * s * 0.4, (0.15, 0.05, 0.06))

    return np.clip(canvas, 0.0, 1.0)


def _area_downsample(image: np.ndarray, size: int) -> np.ndarray:
    """Integer-factor area downsample from the canonical resolution."""
    factor = image.shape[0] // size
    if factor * size != image.shape[0]:
        raise ValueError(
            f"target size {size} must divide the canonical size {image.shape[0]}"
        )
    if factor == 1:
        return image
    h = w = size
    return image.reshape(h, factor, w, factor, 3).mean(axis=(1, 3))


def rafdb_like(
    n_images: int,
    size: int = 112,
    seed: int = 0,
    balanced: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a RAF-DB-like expression dataset.

    Args:
        n_images: number of faces.
        size: output resolution; must divide :data:`CANONICAL_SIZE`
            (valid: 14, 28, 56, 112, 224 and other divisors).
        seed: dataset seed (train/val splits should use different seeds).
        balanced: cycle through classes evenly; otherwise sample uniformly.

    Returns:
        ``(images, labels)``: float64 ``(N, size, size, 3)`` in [0, 1] and
        int64 ``(N,)`` with label index into :data:`EXPRESSIONS`.
    """
    if CANONICAL_SIZE % size != 0:
        raise ValueError(f"size must divide {CANONICAL_SIZE}, got {size}")
    images = np.empty((n_images, size, size, 3))
    labels = np.empty(n_images, dtype=np.int64)
    for i in range(n_images):
        rng = np.random.default_rng((seed, i))
        if balanced:
            label = i % len(EXPRESSIONS)
        else:
            label = int(rng.integers(len(EXPRESSIONS)))
        face = render_face(EXPRESSIONS[label], rng, CANONICAL_SIZE)
        images[i] = _area_downsample(face, size)
        labels[i] = label
    return images, labels
