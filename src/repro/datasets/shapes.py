"""Rasterization primitives and object renderers for synthetic scenes.

Everything draws in-place onto a float64 ``(H, W, 3)`` canvas in [0, 1].
Primitives are anti-aliased by coverage (a pixel's color blends with the
shape proportionally to its analytic coverage estimate), which matters at
the VisDrone-like scale where objects are only a handful of pixels wide.

Object renderers return the ground-truth boxes the detection datasets need:

* :func:`draw_person` — torso/legs/arms/head; returns (body_box, head_box);
* :func:`draw_cyclist` — a person over a two-wheel frame;
* :func:`draw_vehicle` — parameterized car/van/truck/bus/motor/... bodies
  for the VisDrone-like profile.
"""

from __future__ import annotations

import numpy as np

from .textures import stripes, value_noise

Box = tuple[float, float, float, float]


def _blend(region: np.ndarray, color: np.ndarray, coverage: np.ndarray) -> None:
    """Alpha-blend ``color`` into ``region`` with per-pixel ``coverage``."""
    region += coverage[:, :, None] * (color[None, None, :] - region)


def fill_rect(
    canvas: np.ndarray, x: float, y: float, w: float, h: float, color
) -> None:
    """Axis-aligned rectangle with edge anti-aliasing."""
    if w <= 0 or h <= 0:
        return
    H, W = canvas.shape[:2]
    x0, y0 = int(np.floor(x)), int(np.floor(y))
    x1, y1 = int(np.ceil(x + w)), int(np.ceil(y + h))
    x0c, y0c = max(x0, 0), max(y0, 0)
    x1c, y1c = min(x1, W), min(y1, H)
    if x0c >= x1c or y0c >= y1c:
        return
    xs = np.arange(x0c, x1c) + 0.5
    ys = np.arange(y0c, y1c) + 0.5
    cov_x = np.clip(np.minimum(xs - x, x + w - xs) + 0.5, 0.0, 1.0)
    cov_y = np.clip(np.minimum(ys - y, y + h - ys) + 0.5, 0.0, 1.0)
    coverage = cov_y[:, None] * cov_x[None, :]
    _blend(canvas[y0c:y1c, x0c:x1c], np.asarray(color, dtype=np.float64), coverage)


def fill_ellipse(
    canvas: np.ndarray, cx: float, cy: float, rx: float, ry: float, color
) -> None:
    """Filled ellipse with ~1px soft edge."""
    if rx <= 0 or ry <= 0:
        return
    H, W = canvas.shape[:2]
    x0, y0 = max(int(np.floor(cx - rx - 1)), 0), max(int(np.floor(cy - ry - 1)), 0)
    x1, y1 = min(int(np.ceil(cx + rx + 1)), W), min(int(np.ceil(cy + ry + 1)), H)
    if x0 >= x1 or y0 >= y1:
        return
    xs = (np.arange(x0, x1) + 0.5 - cx) / rx
    ys = (np.arange(y0, y1) + 0.5 - cy) / ry
    dist = np.sqrt(ys[:, None] ** 2 + xs[None, :] ** 2)
    # Coverage falls from 1 to 0 over roughly one pixel at the rim.
    edge = 1.0 / max(min(rx, ry), 1.0)
    coverage = np.clip((1.0 - dist) / edge + 0.5, 0.0, 1.0)
    _blend(canvas[y0:y1, x0:x1], np.asarray(color, dtype=np.float64), coverage)


def fill_circle(canvas: np.ndarray, cx: float, cy: float, r: float, color) -> None:
    fill_ellipse(canvas, cx, cy, r, r, color)


def texture_rect(
    canvas: np.ndarray,
    x: float,
    y: float,
    w: float,
    h: float,
    base_color,
    rng: np.random.Generator,
    strength: float = 0.25,
    pitch: float | None = None,
) -> None:
    """Rectangle filled with textured color (fabric-like).

    A striped or noise-modulated version of ``base_color``; ``pitch`` pixels
    sets the stripe period (fine pitch = high-frequency detail).
    """
    if w < 1 or h < 1:
        fill_rect(canvas, x, y, w, h, base_color)
        return
    x0, y0 = int(np.floor(max(x, 0))), int(np.floor(max(y, 0)))
    x1 = int(np.ceil(min(x + w, canvas.shape[1])))
    y1 = int(np.ceil(min(y + h, canvas.shape[0])))
    if x0 >= x1 or y0 >= y1:
        return
    shape = (y1 - y0, x1 - x0)
    if pitch is not None and pitch >= 1.5:
        field = stripes(shape, pitch=pitch, angle_deg=float(rng.uniform(0, 180)))
    else:
        field = value_noise(shape, rng, octaves=2, base_cells=3)
    base = np.asarray(base_color, dtype=np.float64)
    textured = base[None, None, :] * (1.0 - strength + strength * field[:, :, None] * 2.0)
    canvas[y0:y1, x0:x1] = np.clip(textured, 0.0, 1.0)


# -- skin/clothing palettes ------------------------------------------------------

SKIN_TONES = (
    (0.95, 0.80, 0.69),
    (0.87, 0.68, 0.53),
    (0.76, 0.57, 0.42),
    (0.55, 0.39, 0.29),
    (0.42, 0.29, 0.21),
)

HAIR_COLORS = (
    (0.08, 0.06, 0.05),
    (0.25, 0.15, 0.08),
    (0.45, 0.32, 0.14),
    (0.62, 0.55, 0.48),
    (0.12, 0.10, 0.11),
)


def clothing_color(
    rng: np.random.Generator, color_dependence: float, background_luma: float
) -> tuple[float, float, float]:
    """Sample a clothing color whose *detectability* depends on color.

    With high ``color_dependence`` the clothing is strongly chromatic but
    its *luminance* is matched to the background — so an RGB detector sees
    it clearly while a grayscale detector loses most of the contrast.  With
    low dependence the clothing contrasts in luminance too.

    Args:
        rng: random generator.
        color_dependence: 0 (luminance cue) .. 1 (pure chroma cue).
        background_luma: approximate background luminance to match against.

    Returns:
        RGB tuple.
    """
    hue = rng.uniform(0.0, 1.0)
    # Simple HSV->RGB with V chosen per the dependence knob.
    if rng.random() < color_dependence:
        target_luma = float(np.clip(background_luma + rng.normal(0.0, 0.04), 0.1, 0.9))
        saturation = 0.85
    else:
        offset = rng.choice([-0.35, 0.35])
        target_luma = float(np.clip(background_luma + offset, 0.05, 0.95))
        saturation = rng.uniform(0.2, 0.6)
    rgb = _hsv_to_rgb(hue, saturation, 1.0)
    luma = 0.299 * rgb[0] + 0.587 * rgb[1] + 0.114 * rgb[2]
    scale = target_luma / max(luma, 1e-6)
    return tuple(float(np.clip(c * scale, 0.0, 1.0)) for c in rgb)


def _hsv_to_rgb(h: float, s: float, v: float) -> tuple[float, float, float]:
    i = int(h * 6.0) % 6
    f = h * 6.0 - int(h * 6.0)
    p, q, t = v * (1 - s), v * (1 - f * s), v * (1 - (1 - f) * s)
    return [(v, t, p), (q, v, p), (p, v, t), (p, q, v), (t, p, v), (v, p, q)][i]


# -- object renderers --------------------------------------------------------------


def draw_person(
    canvas: np.ndarray,
    rng: np.random.Generator,
    cx: float,
    top: float,
    height: float,
    color_dependence: float = 0.5,
    background_luma: float = 0.5,
) -> tuple[Box, Box]:
    """Draw a standing person; returns ``(body_box, head_box)``.

    Proportions follow the classic 7.5-head figure: head diameter ~ height/6
    (a bit large, matching pedestrian-dataset head boxes), shoulder width ~
    height/3.

    Args:
        canvas: target image.
        rng: random generator.
        cx: horizontal center in pixels.
        top: y of the top of the head.
        height: full body height in pixels.
        color_dependence: see :func:`clothing_color`.
        background_luma: backdrop luminance near the person.

    Returns:
        Two ``(x, y, w, h)`` boxes: full body and head.
    """
    head_d = height / 6.0
    body_w = height / 2.8
    skin = np.asarray(SKIN_TONES[rng.integers(len(SKIN_TONES))])
    hair = np.asarray(HAIR_COLORS[rng.integers(len(HAIR_COLORS))])
    shirt = np.asarray(clothing_color(rng, color_dependence, background_luma))
    pants = np.asarray(clothing_color(rng, color_dependence, background_luma))

    head_cy = top + head_d / 2.0
    # Head + hair cap.
    fill_circle(canvas, cx, head_cy, head_d / 2.0, skin)
    fill_ellipse(canvas, cx, top + head_d * 0.28, head_d * 0.52, head_d * 0.33, hair)
    # Facial micro-features (visible only at high resolution).
    eye_r = max(head_d * 0.05, 0.4)
    fill_circle(canvas, cx - head_d * 0.18, head_cy - head_d * 0.05, eye_r, (0.05, 0.05, 0.08))
    fill_circle(canvas, cx + head_d * 0.18, head_cy - head_d * 0.05, eye_r, (0.05, 0.05, 0.08))
    fill_rect(
        canvas, cx - head_d * 0.15, head_cy + head_d * 0.22, head_d * 0.3, max(head_d * 0.05, 0.4),
        (0.45, 0.2, 0.2),
    )

    # Torso with fabric stripes (pitch scales with size: fine detail).
    torso_top = top + head_d
    torso_h = height * 0.38
    texture_rect(
        canvas, cx - body_w / 2.0, torso_top, body_w, torso_h, shirt, rng,
        strength=0.3, pitch=max(height / 40.0, 1.6),
    )
    # Arms.
    arm_w = body_w * 0.18
    fill_rect(canvas, cx - body_w / 2.0 - arm_w, torso_top, arm_w, torso_h * 0.9, shirt)
    fill_rect(canvas, cx + body_w / 2.0, torso_top, arm_w, torso_h * 0.9, shirt)
    # Legs.
    legs_top = torso_top + torso_h
    leg_h = height - head_d - torso_h
    leg_w = body_w * 0.32
    fill_rect(canvas, cx - body_w * 0.30, legs_top, leg_w, leg_h, pants)
    fill_rect(canvas, cx + body_w * 0.30 - leg_w, legs_top, leg_w, leg_h, pants)

    body_box = (cx - body_w / 2.0 - arm_w, top, body_w + 2 * arm_w, height)
    head_box = (cx - head_d * 0.55, top, head_d * 1.1, head_d * 1.1)
    return body_box, head_box


def draw_cyclist(
    canvas: np.ndarray,
    rng: np.random.Generator,
    cx: float,
    top: float,
    height: float,
    color_dependence: float = 0.5,
    background_luma: float = 0.5,
) -> Box:
    """Person on a bicycle; returns the enclosing box."""
    wheel_r = height * 0.18
    frame_color = np.asarray(clothing_color(rng, color_dependence * 0.5, background_luma))
    person_h = height * 0.72
    body_box, _ = draw_person(
        canvas, rng, cx, top, person_h, color_dependence, background_luma
    )
    wheel_y = top + height - wheel_r
    tire = (0.08, 0.08, 0.08)
    for wx in (cx - height * 0.22, cx + height * 0.22):
        fill_circle(canvas, wx, wheel_y, wheel_r, tire)
        fill_circle(canvas, wx, wheel_y, wheel_r * 0.55, frame_color)
    fill_rect(
        canvas, cx - height * 0.22, wheel_y - wheel_r * 0.2, height * 0.44, wheel_r * 0.3,
        frame_color,
    )
    x0 = min(body_box[0], cx - height * 0.22 - wheel_r)
    x1 = max(body_box[0] + body_box[2], cx + height * 0.22 + wheel_r)
    return (x0, top, x1 - x0, height)


#: VisDrone-like vehicle footprints: (aspect w/h, base RGB, window fraction).
VEHICLE_STYLES = {
    "car": (2.1, (0.75, 0.1, 0.1), 0.45),
    "van": (2.3, (0.85, 0.85, 0.9), 0.35),
    "truck": (2.9, (0.3, 0.4, 0.6), 0.25),
    "bus": (3.2, (0.9, 0.6, 0.1), 0.5),
    "motor": (1.9, (0.2, 0.2, 0.25), 0.0),
    "bicycle": (1.8, (0.15, 0.5, 0.2), 0.0),
    "tricycle": (1.6, (0.6, 0.3, 0.1), 0.2),
    "awning-tricycle": (1.6, (0.2, 0.5, 0.55), 0.3),
}


def draw_vehicle(
    canvas: np.ndarray,
    rng: np.random.Generator,
    kind: str,
    cx: float,
    cy: float,
    length: float,
) -> Box:
    """Top-down vehicle for aerial scenes; returns its box.

    Args:
        canvas: target image.
        rng: random generator.
        kind: a key of :data:`VEHICLE_STYLES`.
        cx, cy: center position in pixels.
        length: vehicle length in pixels (width derives from the aspect).

    Returns:
        ``(x, y, w, h)`` box.
    """
    aspect, base, win_frac = VEHICLE_STYLES[kind]
    w = length
    h = max(length / aspect, 1.5)
    jitter = rng.normal(0.0, 0.05, size=3)
    color = np.clip(np.asarray(base) + jitter, 0.0, 1.0)
    x, y = cx - w / 2.0, cy - h / 2.0
    fill_rect(canvas, x, y, w, h, color)
    if win_frac > 0:
        fill_rect(
            canvas, x + w * 0.22, y + h * 0.18, w * win_frac, h * 0.64,
            (0.1, 0.12, 0.18),
        )
    if kind in ("motor", "bicycle"):
        fill_circle(canvas, x + w * 0.2, cy, h * 0.4, (0.05, 0.05, 0.05))
        fill_circle(canvas, x + w * 0.8, cy, h * 0.4, (0.05, 0.05, 0.05))
    return (x, y, w, h)
