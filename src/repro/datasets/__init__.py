"""Procedural dataset substrates for the HiRISE experiments.

These replace CrowdHuman, TJU-DHD-Campus, VisDrone and RAF-DB, which cannot
be redistributed or downloaded in an offline reproduction.  Every generator
is deterministic given its seed.  See DESIGN.md §5 for why the substitution
preserves the paper's comparisons.
"""

from .crowdhuman import crowdhuman_like, median_body_area_fraction, median_head_count
from .dhdcampus import dhdcampus_like
from .profiles import (
    ALL_DETECTION_PROFILES,
    CROWDHUMAN_LIKE,
    DHDCAMPUS_LIKE,
    DatasetProfile,
    VISDRONE_LIKE,
)
from .rafdb import CANONICAL_SIZE, EXPRESSIONS, rafdb_like, render_face
from .scene import GroundTruthBox, Scene, SceneGenerator
from .visdrone import visdrone_like

__all__ = [
    "ALL_DETECTION_PROFILES",
    "CANONICAL_SIZE",
    "CROWDHUMAN_LIKE",
    "DHDCAMPUS_LIKE",
    "DatasetProfile",
    "EXPRESSIONS",
    "GroundTruthBox",
    "Scene",
    "SceneGenerator",
    "VISDRONE_LIKE",
    "crowdhuman_like",
    "dhdcampus_like",
    "median_body_area_fraction",
    "median_head_count",
    "rafdb_like",
    "render_face",
    "visdrone_like",
]
