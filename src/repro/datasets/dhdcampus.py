"""DHDCampus-like synthetic dataset (campus scenes, person + cyclist).

Stand-in for Pang et al., *TJU-DHD: A Diverse High-Resolution Dataset for
Object Detection* (TIP 2021), campus subset: high-resolution outdoor scenes
annotated with exactly two classes, person and cyclist.
"""

from __future__ import annotations

from .profiles import DHDCAMPUS_LIKE
from .scene import Scene, SceneGenerator


def dhdcampus_like(
    n_images: int,
    resolution: tuple[int, int] = (2560, 1920),
    seed: int = 0,
) -> list[Scene]:
    """Generate DHDCampus-like scenes.

    Args:
        n_images: number of frames.
        resolution: ``(width, height)`` of the pixel array.
        seed: dataset seed.

    Returns:
        List of :class:`~repro.datasets.scene.Scene` with ``person`` and
        ``cyclist`` boxes.
    """
    return SceneGenerator(DHDCAMPUS_LIKE, resolution, seed).generate(n_images)
