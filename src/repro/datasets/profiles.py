"""Dataset profiles: the statistics our procedural stand-ins match.

Each profile mirrors the properties of one of the paper's datasets that
actually drive its experiments:

* **crowdhuman-like** — crowded people with both *person* and *head* boxes;
  the paper derives its Table 3 ROI statistics from 100,000 CrowdHuman head
  boxes (median ≈ 16 heads per frame, head side ≈ 14 px per 320 px of frame
  width) and its Fig. 7 data-transfer load from body boxes (ΣWH ≈ 27% of
  the frame).  The scale/count ranges below reproduce those medians.
* **dhdcampus-like** — moderate-density campus scenes, classes person and
  cyclist (TJU-DHD-Campus has exactly these two).
* **visdrone-like** — aerial scenes with 10 classes of *tiny* objects; the
  paper observes accuracy more than doubles from 320x240 to 1280x960 here,
  which requires objects only a few pooled pixels wide at low resolution.

``objects_per_image`` and ``object_scale`` are expressed resolution-
independently (counts, and heights as fractions of the frame height), so
the same profile renders faithfully at any pixel-array size.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DatasetProfile:
    """Statistics of one synthetic detection dataset.

    Attributes:
        name: dataset identifier.
        classes: drawable class labels (see ``scene._draw_object``).
        eval_classes: classes scored by mAP (e.g. CrowdHuman scores person
            and head; VisDrone scores its 10 categories).
        objects_per_image: inclusive (low, high) uniform range of count.
        object_scale: (low, high) object height as a fraction of the frame
            height.
        color_dependence: in [0, 1]; fraction of objects whose contrast is
            chromatic rather than luminance (drives the RGB->gray accuracy
            drop in Table 2).
        background: backdrop style ("plaza" | "campus" | "aerial").
        head_boxes: whether person objects also emit a *head* box.
    """

    name: str
    classes: tuple[str, ...]
    eval_classes: tuple[str, ...]
    objects_per_image: tuple[int, int]
    object_scale: tuple[float, float]
    color_dependence: float
    background: str
    head_boxes: bool = False


CROWDHUMAN_LIKE = DatasetProfile(
    name="crowdhuman-like",
    classes=("person",),
    eval_classes=("person", "head"),
    objects_per_image=(12, 20),
    object_scale=(0.14, 0.30),
    color_dependence=0.75,
    background="plaza",
    head_boxes=True,
)

DHDCAMPUS_LIKE = DatasetProfile(
    name="dhdcampus-like",
    classes=("person", "cyclist"),
    eval_classes=("person", "cyclist"),
    objects_per_image=(4, 10),
    object_scale=(0.12, 0.28),
    color_dependence=0.45,
    background="campus",
    head_boxes=False,
)

VISDRONE_LIKE = DatasetProfile(
    name="visdrone-like",
    classes=(
        "pedestrian",
        "people",
        "bicycle",
        "car",
        "van",
        "truck",
        "tricycle",
        "awning-tricycle",
        "bus",
        "motor",
    ),
    eval_classes=(
        "pedestrian",
        "people",
        "bicycle",
        "car",
        "van",
        "truck",
        "tricycle",
        "awning-tricycle",
        "bus",
        "motor",
    ),
    objects_per_image=(12, 28),
    object_scale=(0.015, 0.055),
    color_dependence=0.35,
    background="aerial",
    head_boxes=False,
)

ALL_DETECTION_PROFILES = (CROWDHUMAN_LIKE, DHDCAMPUS_LIKE, VISDRONE_LIKE)
