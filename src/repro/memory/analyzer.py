"""Peak-SRAM and flash analysis of model graphs (TFLite-Micro style).

The paper (Sec. 4.2) analyzes peak SRAM "by looking at the execution order
of operations ... and finding the point where the most memory is required",
with TFLite-Micro as the interpreter.  That is exactly the tensor-lifetime
model implemented here:

* a tensor is *live* from the step that produces it through the last step
  that consumes it;
* executing node ``i`` requires all its input tensors plus its output
  tensor to be resident simultaneously (plus any other still-live tensor —
  e.g. a residual skip held across a block);
* fused activations (``Activation`` ops) operate in place and do not
  allocate a second buffer;
* peak SRAM is the maximum over steps of the live-byte total.

Flash is the total weight storage.  Both use 1 byte/element by default
(int8 quantization, the paper's deployment dtype).

:func:`analyze_patched` models MCUNetV2's *patch-based inference* (ref [7]):
the first ``n_patch_ops`` operators run per spatial patch (with a receptive
-field halo), so their activations are a patch-sized fraction of the full
tensors; the remaining ops run on the full (already small) feature maps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .graph import INPUT, ModelGraph
from .ops import Activation, TensorShape


@dataclass
class MemoryReport:
    """Result of a memory analysis.

    Attributes:
        model: model name.
        peak_sram_bytes: activation-arena peak (includes the live input).
        flash_bytes: total weight bytes.
        peak_node: node name at which the peak occurs.
        per_node_bytes: live bytes at each execution step, in order.
        dtype_bytes: bytes per activation/weight element used.
    """

    model: str
    peak_sram_bytes: int
    flash_bytes: int
    peak_node: str
    per_node_bytes: list[tuple[str, int]] = field(default_factory=list)
    dtype_bytes: int = 1

    @property
    def peak_sram_kb(self) -> float:
        return self.peak_sram_bytes / 1024.0

    @property
    def flash_kb(self) -> float:
        return self.flash_bytes / 1024.0


def _lifetimes(graph: ModelGraph) -> tuple[dict[str, int], dict[str, int]]:
    """Tensor -> (production step, last consumption step)."""
    produced: dict[str, int] = {INPUT: -1}
    last_use: dict[str, int] = {INPUT: -1}
    for i, node in enumerate(graph.nodes):
        produced[node.output] = i
        last_use.setdefault(node.output, i)
        for t in node.inputs:
            last_use[t] = max(last_use.get(t, i), i)
    # The graph output must survive past the last step.
    last_use[graph.output] = len(graph.nodes) - 1
    return produced, last_use


def analyze(
    graph: ModelGraph,
    dtype_bytes: int = 1,
    include_input: bool = True,
) -> MemoryReport:
    """Tensor-lifetime peak-SRAM and flash analysis.

    Args:
        graph: the model graph (execution order = node order).
        dtype_bytes: bytes per element (1 for int8, 4 for float32).
        include_input: count the input tensor while it is still live
            (TFLite-Micro keeps it in the arena; the paper's numbers for
            stage-2 models include the ROI crop).

    Returns:
        :class:`MemoryReport`.
    """
    produced, last_use = _lifetimes(graph)
    sizes = {t: graph.shape(t).bytes(dtype_bytes) for t in produced}
    if not include_input:
        sizes[INPUT] = 0

    # In-place activations share their input buffer: zero-size output,
    # and the input inherits the activation output's lifetime.
    alias: dict[str, str] = {}
    for i, node in enumerate(graph.nodes):
        if isinstance(node.op, Activation):
            src = node.inputs[0]
            root = alias.get(src, src)
            alias[node.output] = root
            last_use[root] = max(last_use[root], last_use[node.output])
            sizes[node.output] = 0

    per_node: list[tuple[str, int]] = []
    peak, peak_node = 0, ""
    for i, node in enumerate(graph.nodes):
        live = 0
        for t, p in produced.items():
            if p <= i <= last_use[t]:
                live += sizes[t]
        per_node.append((node.name, live))
        if live > peak:
            peak, peak_node = live, node.name
    return MemoryReport(
        model=graph.name,
        peak_sram_bytes=peak,
        flash_bytes=graph.total_params() * dtype_bytes,
        peak_node=peak_node,
        per_node_bytes=per_node,
        dtype_bytes=dtype_bytes,
    )


def analyze_patched(
    graph: ModelGraph,
    n_patch_ops: int,
    patch_grid: int = 4,
    halo: int = 2,
    dtype_bytes: int = 1,
) -> MemoryReport:
    """Peak SRAM under MCUNetV2-style patch-based inference.

    The first ``n_patch_ops`` nodes execute once per patch on a
    ``1/patch_grid``-scaled spatial extent (plus ``halo`` pixels of
    receptive-field margin per side); only one patch's activations are live
    at a time, together with the (full) output of the patched stage being
    assembled.  Subsequent nodes run on full tensors as usual.

    Args:
        graph: the model graph.
        n_patch_ops: how many leading ops run patch-wise.
        patch_grid: patches per side (4 -> 16 patches).
        halo: per-side overlap in pixels at the *input* of the patch stage.
        dtype_bytes: bytes per element.

    Returns:
        :class:`MemoryReport`; ``peak_node`` reports the stage
        (``"patch-stage"`` or a full-stage node name) where the peak lies.
    """
    if not 0 < n_patch_ops <= len(graph.nodes):
        raise ValueError("n_patch_ops must be in [1, len(graph)]")

    def patched(shape: TensorShape) -> TensorShape:
        return TensorShape(
            max(shape.h // patch_grid + halo, 1),
            max(shape.w // patch_grid + halo, 1),
            shape.c,
        )

    # Peak within the patch stage: run the lifetime analysis on the prefix
    # with patch-scaled tensor sizes, plus the accumulating full output of
    # the patch stage.
    produced, last_use = _lifetimes(graph)
    boundary_tensor = graph.nodes[n_patch_ops - 1].output
    boundary_bytes = graph.shape(boundary_tensor).bytes(dtype_bytes)

    patch_peak = 0
    for i in range(n_patch_ops):
        live = 0
        for t, p in produced.items():
            if p <= i <= last_use[t] and p < n_patch_ops:
                live += patched(graph.shape(t)).bytes(dtype_bytes)
        patch_peak = max(patch_peak, live + boundary_bytes)

    # Peak in the full-resolution remainder.
    full_peak, full_node = 0, ""
    for i in range(n_patch_ops, len(graph.nodes)):
        live = 0
        for t, p in produced.items():
            if p <= i <= last_use[t]:
                size = graph.shape(t).bytes(dtype_bytes)
                live += size
        if live > full_peak:
            full_peak, full_node = live, graph.nodes[i].name

    if patch_peak >= full_peak:
        peak, peak_node = patch_peak, "patch-stage"
    else:
        peak, peak_node = full_peak, full_node
    return MemoryReport(
        model=f"{graph.name} (patched x{patch_grid * patch_grid})",
        peak_sram_bytes=peak,
        flash_bytes=graph.total_params() * dtype_bytes,
        peak_node=peak_node,
        dtype_bytes=dtype_bytes,
    )
