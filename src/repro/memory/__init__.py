"""Memory-analysis substrate: op graphs, peak-SRAM/flash analyzer, model zoo."""

from .analyzer import MemoryReport, analyze, analyze_patched
from .graph import INPUT, GraphError, ModelGraph, Node
from .mcu import ALL_MCUS, MCUProfile, NRF52840, STM32F411, STM32F746, STM32H743
from .ops import (
    Activation,
    Add,
    Conv,
    Dense,
    DepthwiseConv,
    GlobalPool,
    OpSpec,
    Pool,
    TensorShape,
)
from .zoo import (
    MCUNETV2_PATCH_OPS,
    MCUNETV2_SETTINGS,
    MOBILENETV2_SETTINGS,
    mcunetv2_classifier,
    mcunetv2_detector,
    mobilenetv2,
)

__all__ = [
    "ALL_MCUS",
    "Activation",
    "Add",
    "Conv",
    "Dense",
    "DepthwiseConv",
    "GlobalPool",
    "GraphError",
    "INPUT",
    "MCUNETV2_PATCH_OPS",
    "MCUNETV2_SETTINGS",
    "MCUProfile",
    "MOBILENETV2_SETTINGS",
    "MemoryReport",
    "ModelGraph",
    "NRF52840",
    "Node",
    "OpSpec",
    "Pool",
    "STM32F411",
    "STM32F746",
    "STM32H743",
    "TensorShape",
    "analyze",
    "analyze_patched",
    "mcunetv2_classifier",
    "mcunetv2_detector",
    "mobilenetv2",
]
