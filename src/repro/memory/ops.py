"""Operator specifications with shape/parameter/MAC inference.

These are *static descriptions* used for memory analysis (peak activation
SRAM and weight flash), standing in for the TFLite-Micro graphs the paper
inspects in Sec. 4.2.  Tensors are single-batch HWC; quantized deployments
use 1 byte per element (int8), which is the paper's setting.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil


@dataclass(frozen=True)
class TensorShape:
    """Single-batch activation shape (height, width, channels)."""

    h: int
    w: int
    c: int

    def __post_init__(self) -> None:
        if self.h < 1 or self.w < 1 or self.c < 1:
            raise ValueError(f"invalid tensor shape {self}")

    @property
    def elems(self) -> int:
        return self.h * self.w * self.c

    def bytes(self, dtype_bytes: int = 1) -> int:
        return self.elems * dtype_bytes

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.h}x{self.w}x{self.c}"


def _conv_out(size: int, kernel: int, stride: int, same: bool) -> int:
    if same:
        return ceil(size / stride)
    return (size - kernel) // stride + 1


class OpSpec:
    """Base operator: shape inference + parameter and MAC counts."""

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:  # pragma: no cover
        raise NotImplementedError

    def weight_params(self, inputs: list[TensorShape]) -> int:
        return 0

    def macs(self, inputs: list[TensorShape]) -> int:
        return 0

    def _one(self, inputs: list[TensorShape]) -> TensorShape:
        if len(inputs) != 1:
            raise ValueError(f"{type(self).__name__} expects exactly one input")
        return inputs[0]


@dataclass(frozen=True)
class Conv(OpSpec):
    """Standard convolution; ``same`` padding by default.

    Attributes:
        out_c: output channels.
        kernel: square kernel side.
        stride: spatial stride.
        same: SAME (ceil) vs VALID padding semantics.
        bias: include per-channel bias parameters.
    """

    out_c: int
    kernel: int = 3
    stride: int = 1
    same: bool = True
    bias: bool = True

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        x = self._one(inputs)
        return TensorShape(
            _conv_out(x.h, self.kernel, self.stride, self.same),
            _conv_out(x.w, self.kernel, self.stride, self.same),
            self.out_c,
        )

    def weight_params(self, inputs: list[TensorShape]) -> int:
        x = self._one(inputs)
        return self.kernel * self.kernel * x.c * self.out_c + (self.out_c if self.bias else 0)

    def macs(self, inputs: list[TensorShape]) -> int:
        out = self.output_shape(inputs)
        return out.elems * self.kernel * self.kernel * inputs[0].c


@dataclass(frozen=True)
class DepthwiseConv(OpSpec):
    """Depthwise convolution: channels preserved."""

    kernel: int = 3
    stride: int = 1
    same: bool = True
    bias: bool = True

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        x = self._one(inputs)
        return TensorShape(
            _conv_out(x.h, self.kernel, self.stride, self.same),
            _conv_out(x.w, self.kernel, self.stride, self.same),
            x.c,
        )

    def weight_params(self, inputs: list[TensorShape]) -> int:
        x = self._one(inputs)
        return self.kernel * self.kernel * x.c + (x.c if self.bias else 0)

    def macs(self, inputs: list[TensorShape]) -> int:
        out = self.output_shape(inputs)
        return out.elems * self.kernel * self.kernel


@dataclass(frozen=True)
class Pool(OpSpec):
    """Average or max pooling with its own window/stride."""

    kernel: int = 2
    stride: int | None = None
    kind: str = "max"

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        x = self._one(inputs)
        stride = self.stride or self.kernel
        return TensorShape(
            _conv_out(x.h, self.kernel, stride, same=False),
            _conv_out(x.w, self.kernel, stride, same=False),
            x.c,
        )


@dataclass(frozen=True)
class GlobalPool(OpSpec):
    """Global average pooling to 1x1xC."""

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        x = self._one(inputs)
        return TensorShape(1, 1, x.c)


@dataclass(frozen=True)
class Dense(OpSpec):
    """Fully connected layer on a flattened input."""

    out_features: int
    bias: bool = True

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        return TensorShape(1, 1, self.out_features)

    def weight_params(self, inputs: list[TensorShape]) -> int:
        x = self._one(inputs)
        return x.elems * self.out_features + (self.out_features if self.bias else 0)

    def macs(self, inputs: list[TensorShape]) -> int:
        return self._one(inputs).elems * self.out_features


@dataclass(frozen=True)
class Add(OpSpec):
    """Elementwise residual addition of two same-shape tensors."""

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        if len(inputs) != 2:
            raise ValueError("Add expects exactly two inputs")
        a, b = inputs
        if (a.h, a.w, a.c) != (b.h, b.w, b.c):
            raise ValueError(f"Add shape mismatch: {a} vs {b}")
        return a


@dataclass(frozen=True)
class Activation(OpSpec):
    """In-place-able activation (ReLU/ReLU6/...): shape-preserving, no params.

    Memory analyzers treat activations as fused (TFLite-Micro fuses them
    into the preceding op), so the analyzer may skip allocating a separate
    output for them; see ``analyzer.fused_activation``.
    """

    kind: str = "relu6"

    def output_shape(self, inputs: list[TensorShape]) -> TensorShape:
        return self._one(inputs)
