"""Model zoo: faithful op-graph descriptions of the paper's models.

Three architectures appear in the paper's memory study (Sec. 4.2, Fig. 6,
Table 3):

* **MobileNetV2** (Sandler et al. 2018) — built here exactly from the
  published inverted-residual table, parameterized by input size and width
  multiplier.
* **MCUNetV2 classifier** (Lin et al. 2021) — an MCU-scale inverted-residual
  network; we use a width/depth-reduced MobileNet-style configuration in the
  published MCUNet design space, with the patch-based-inference option
  exposed through :func:`repro.memory.analyzer.analyze_patched`.
* **MCUNetV2 person detector** — the stage-1 model: the same backbone at
  320x240 input with a lightweight grid head instead of the classifier head.

Exact MCUNetV2 hyper-parameters are the product of the authors' NAS and are
not fully published; the configurations here land in the same memory regime
the paper reports (hundreds-of-kB peak SRAM, ~300 kB / ~1 MB flash) and
scale with input resolution the same way, which is what Fig. 6 and Table 3
measure.  EXPERIMENTS.md records our measured values against the paper's.
"""

from __future__ import annotations

from .graph import ModelGraph
from .ops import Activation, Add, Conv, Dense, DepthwiseConv, GlobalPool, TensorShape


def _make_divisible(value: float, divisor: int = 8) -> int:
    """Round channel counts the way the MobileNetV2 reference code does."""
    new_v = max(divisor, int(value + divisor / 2) // divisor * divisor)
    if new_v < 0.9 * value:
        new_v += divisor
    return new_v


def _inverted_residual(
    graph: ModelGraph,
    tensor: str,
    prefix: str,
    in_c: int,
    out_c: int,
    stride: int,
    expand: int,
) -> str:
    """Append one inverted-residual block; returns the output tensor name."""
    hidden = in_c * expand
    t = tensor
    if expand != 1:
        t = graph.add(f"{prefix}_expand", Conv(hidden, kernel=1), [t])
        t = graph.add(f"{prefix}_expand_relu", Activation("relu6"), [t])
    t = graph.add(f"{prefix}_dw", DepthwiseConv(kernel=3, stride=stride), [t])
    t = graph.add(f"{prefix}_dw_relu", Activation("relu6"), [t])
    t = graph.add(f"{prefix}_project", Conv(out_c, kernel=1), [t])
    if stride == 1 and in_c == out_c:
        t = graph.add(f"{prefix}_add", Add(), [tensor, t])
    return t


#: MobileNetV2 inverted-residual settings: (expand, channels, repeats, stride).
MOBILENETV2_SETTINGS = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def mobilenetv2(
    input_hw: tuple[int, int] = (112, 112),
    n_classes: int = 7,
    width_mult: float = 1.0,
    in_channels: int = 3,
) -> ModelGraph:
    """The published MobileNetV2 as an analysis graph.

    Args:
        input_hw: input ``(height, width)``.
        n_classes: classifier classes.
        width_mult: channel width multiplier (paper uses 1.0).
        in_channels: input channels (3 for RGB ROI crops).

    Returns:
        :class:`~repro.memory.graph.ModelGraph`.
    """
    h, w = input_hw
    g = ModelGraph(f"mobilenetv2-{w}x{h}", TensorShape(h, w, in_channels))
    stem_c = _make_divisible(32 * width_mult)
    t = g.add("stem", Conv(stem_c, kernel=3, stride=2))
    t = g.add("stem_relu", Activation("relu6"), [t])
    in_c = stem_c
    for stage, (expand, channels, repeats, stride) in enumerate(MOBILENETV2_SETTINGS):
        out_c = _make_divisible(channels * width_mult)
        for rep in range(repeats):
            t = _inverted_residual(
                g, t, f"b{stage}_{rep}", in_c, out_c, stride if rep == 0 else 1, expand
            )
            in_c = out_c
    head_c = _make_divisible(1280 * max(width_mult, 1.0))
    t = g.add("head", Conv(head_c, kernel=1), [t])
    t = g.add("head_relu", Activation("relu6"), [t])
    t = g.add("gap", GlobalPool(), [t])
    g.add("logits", Dense(n_classes), [t])
    return g


#: MCUNetV2-flavored settings (reduced widths/depths, NAS-regime).
MCUNETV2_SETTINGS = (
    (1, 16, 1, 1),
    (4, 24, 2, 2),
    (4, 40, 2, 2),
    (4, 80, 3, 2),
    (4, 96, 2, 1),
    (4, 192, 2, 2),
)


def mcunetv2_classifier(
    input_hw: tuple[int, int] = (112, 112),
    n_classes: int = 7,
    in_channels: int = 3,
) -> ModelGraph:
    """MCUNetV2-like image classifier (the paper's stage-2 budget model)."""
    h, w = input_hw
    g = ModelGraph(f"mcunetv2-cls-{w}x{h}", TensorShape(h, w, in_channels))
    t = g.add("stem", Conv(16, kernel=3, stride=2))
    t = g.add("stem_relu", Activation("relu6"), [t])
    in_c = 16
    for stage, (expand, channels, repeats, stride) in enumerate(MCUNETV2_SETTINGS):
        for rep in range(repeats):
            t = _inverted_residual(
                g, t, f"b{stage}_{rep}", in_c, channels, stride if rep == 0 else 1, expand
            )
            in_c = channels
    t = g.add("head", Conv(512, kernel=1), [t])
    t = g.add("head_relu", Activation("relu6"), [t])
    t = g.add("gap", GlobalPool(), [t])
    g.add("logits", Dense(n_classes), [t])
    return g


#: Number of leading ops that MCUNetV2 runs patch-based.  Counting nodes:
#: stem + relu (2), b0_0 (3 ops, expand=1), b1_0 and b1_1 (5 ops each),
#: b2_0 (5 ops) -> 20 nodes, ending exactly at the b2_0 projection, whose
#: output is the (small) stride-8 feature map — a clean block boundary.
MCUNETV2_PATCH_OPS = 20


def mcunetv2_detector(
    input_hw: tuple[int, int] = (240, 320),
    n_classes: int = 1,
    in_channels: int = 3,
) -> ModelGraph:
    """MCUNetV2-like person detector (the paper's stage-1 model).

    Same backbone family as the classifier, with a convolutional grid head
    emitting ``5 + n_classes`` values per cell (objectness, box, classes) —
    the output format of :class:`repro.ml.detector.grid.GridDetector`.
    """
    h, w = input_hw
    g = ModelGraph(f"mcunetv2-det-{w}x{h}", TensorShape(h, w, in_channels))
    t = g.add("stem", Conv(16, kernel=3, stride=2))
    t = g.add("stem_relu", Activation("relu6"), [t])
    in_c = 16
    for stage, (expand, channels, repeats, stride) in enumerate(MCUNETV2_SETTINGS):
        for rep in range(repeats):
            t = _inverted_residual(
                g, t, f"b{stage}_{rep}", in_c, channels, stride if rep == 0 else 1, expand
            )
            in_c = channels
    t = g.add("neck", Conv(64, kernel=1), [t])
    t = g.add("neck_relu", Activation("relu6"), [t])
    g.add("det_head", Conv(5 + n_classes, kernel=1), [t])
    return g
