"""Model graphs: ordered operator DAGs with named tensors.

A :class:`ModelGraph` is a thin container: nodes execute in list order (the
single-threaded interpreter order TFLite-Micro uses), each consuming named
tensors and producing one named output tensor.  Shapes are inferred once at
construction, so analysis is O(nodes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ops import OpSpec, TensorShape

#: Reserved tensor name for the graph input.
INPUT = "input"


@dataclass
class Node:
    """One executed operator.

    Attributes:
        name: unique node name.
        op: operator spec.
        inputs: names of consumed tensors.
        output: name of the produced tensor (defaults to ``name``).
    """

    name: str
    op: OpSpec
    inputs: list[str]
    output: str = ""

    def __post_init__(self) -> None:
        if not self.output:
            self.output = self.name


class GraphError(ValueError):
    """Structural problem in a model graph."""


class ModelGraph:
    """An ordered operator graph with shape inference.

    Args:
        name: model name (reported in tables).
        input_shape: the single input tensor's shape.

    Usage::

        g = ModelGraph("tiny", TensorShape(96, 96, 3))
        t = g.add("stem", Conv(16, 3, 2))          # consumes INPUT by default
        t = g.add("dw1", DepthwiseConv(3, 1), [t])
        ...
    """

    def __init__(self, name: str, input_shape: TensorShape):
        self.name = name
        self.input_shape = input_shape
        self.nodes: list[Node] = []
        self._shapes: dict[str, TensorShape] = {INPUT: input_shape}

    def add(self, name: str, op: OpSpec, inputs: list[str] | None = None) -> str:
        """Append a node; returns its output tensor name.

        Args:
            name: unique node name (also the output tensor name).
            op: operator spec.
            inputs: consumed tensor names; defaults to the previous node's
                output (or the graph input for the first node).
        """
        if any(n.name == name for n in self.nodes):
            raise GraphError(f"duplicate node name {name!r}")
        if inputs is None:
            inputs = [self.nodes[-1].output if self.nodes else INPUT]
        for t in inputs:
            if t not in self._shapes:
                raise GraphError(f"node {name!r} consumes unknown tensor {t!r}")
        node = Node(name=name, op=op, inputs=list(inputs))
        out_shape = op.output_shape([self._shapes[t] for t in inputs])
        if node.output in self._shapes:
            raise GraphError(f"tensor {node.output!r} produced twice")
        self._shapes[node.output] = out_shape
        self.nodes.append(node)
        return node.output

    # -- queries -----------------------------------------------------------------

    def shape(self, tensor: str) -> TensorShape:
        return self._shapes[tensor]

    @property
    def output(self) -> str:
        if not self.nodes:
            raise GraphError("empty graph has no output")
        return self.nodes[-1].output

    @property
    def output_shape(self) -> TensorShape:
        return self._shapes[self.output]

    def total_params(self) -> int:
        """Total trainable parameters across the graph."""
        return sum(
            node.op.weight_params([self._shapes[t] for t in node.inputs])
            for node in self.nodes
        )

    def total_macs(self) -> int:
        """Total multiply-accumulates for one inference."""
        return sum(
            node.op.macs([self._shapes[t] for t in node.inputs])
            for node in self.nodes
        )

    def __len__(self) -> int:
        return len(self.nodes)

    def summary(self) -> str:
        """Tabular description: name, op, output shape, params."""
        lines = [f"{self.name} (input {self.input_shape})"]
        for node in self.nodes:
            shapes = [self._shapes[t] for t in node.inputs]
            lines.append(
                f"  {node.name:<28} {type(node.op).__name__:<14} "
                f"-> {self._shapes[node.output]!s:<12} "
                f"params={node.op.weight_params(shapes):,}"
            )
        lines.append(f"  total params: {self.total_params():,}")
        return "\n".join(lines)
