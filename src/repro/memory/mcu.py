"""Microcontroller profiles: the memory budgets models must fit within."""

from __future__ import annotations

from dataclasses import dataclass

from .analyzer import MemoryReport


@dataclass(frozen=True)
class MCUProfile:
    """One target device.

    Attributes:
        name: marketing name.
        sram_bytes: on-chip SRAM available for activations + image buffers.
        flash_bytes: program/weight flash.
    """

    name: str
    sram_bytes: int
    flash_bytes: int

    @property
    def sram_kb(self) -> float:
        return self.sram_bytes / 1024.0

    @property
    def flash_kb(self) -> float:
        return self.flash_bytes / 1024.0

    def fits(
        self,
        reports: list[MemoryReport],
        extra_sram_bytes: int = 0,
    ) -> bool:
        """Can these models co-reside (time-multiplexed) on the device?

        SRAM is checked against the worst single model's peak plus any
        persistent buffer (e.g. an image held across stages); flash must
        hold all models simultaneously.

        Args:
            reports: per-model memory reports.
            extra_sram_bytes: persistent SRAM (image/frame buffers).
        """
        if not reports:
            return extra_sram_bytes <= self.sram_bytes
        peak = max(r.peak_sram_bytes for r in reports) + extra_sram_bytes
        flash = sum(r.flash_bytes for r in reports)
        return peak <= self.sram_bytes and flash <= self.flash_bytes

    def sram_headroom(self, reports: list[MemoryReport]) -> int:
        """Free SRAM bytes with all models resident (can be negative)."""
        peak = max((r.peak_sram_bytes for r in reports), default=0)
        return self.sram_bytes - peak


#: The paper's case-study device (Arm Cortex-M7, Sec. 4.2).
STM32H743 = MCUProfile("STM32H743", sram_bytes=512 * 1024, flash_bytes=2 * 1024 * 1024)

#: Additional common tinyML targets for the memory-budget example.
STM32F746 = MCUProfile("STM32F746", sram_bytes=320 * 1024, flash_bytes=1024 * 1024)
NRF52840 = MCUProfile("nRF52840", sram_bytes=256 * 1024, flash_bytes=1024 * 1024)
STM32F411 = MCUProfile("STM32F411", sram_bytes=128 * 1024, flash_bytes=512 * 1024)

ALL_MCUS = (STM32H743, STM32F746, NRF52840, STM32F411)
