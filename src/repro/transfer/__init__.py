"""Sensor <-> processor transfer accounting."""

from .link import (
    LinkModel,
    TransferLedger,
    WORD_BYTES,
    WORDS_PER_ROI,
    roi_descriptor_bytes,
)
from .packets import PacketStats, packet_stats, roi_payload_bytes, split_into_mtu

__all__ = [
    "LinkModel",
    "PacketStats",
    "TransferLedger",
    "WORD_BYTES",
    "WORDS_PER_ROI",
    "packet_stats",
    "roi_descriptor_bytes",
    "roi_payload_bytes",
    "split_into_mtu",
]
