"""Packetization helpers: how frames and ROI crops map onto link packets.

The paper reports *median packet size* (the W x H of ROIs) in Sec. 4.3;
these helpers compute packet statistics for a stream of transfers so the
Fig. 7 bench can report the same quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np


@dataclass(frozen=True)
class PacketStats:
    """Statistics over a sequence of logical transfers.

    Attributes:
        n_packets: number of transfers.
        total_bytes: sum of payload bytes.
        median_bytes: median payload size.
        max_bytes: largest payload.
    """

    n_packets: int
    total_bytes: int
    median_bytes: float
    max_bytes: int


def packet_stats(payload_sizes: list[int]) -> PacketStats:
    """Summarize a list of payload byte counts."""
    if not payload_sizes:
        return PacketStats(0, 0, 0.0, 0)
    arr = np.asarray(payload_sizes, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("payload sizes must be non-negative")
    return PacketStats(
        n_packets=int(arr.size),
        total_bytes=int(arr.sum()),
        median_bytes=float(np.median(arr)),
        max_bytes=int(arr.max()),
    )


def split_into_mtu(payload_bytes: int, mtu_bytes: int) -> int:
    """Number of MTU-sized packets needed for one payload."""
    if mtu_bytes < 1:
        raise ValueError("mtu_bytes must be >= 1")
    if payload_bytes < 0:
        raise ValueError("payload_bytes must be non-negative")
    if payload_bytes == 0:
        return 0
    return ceil(payload_bytes / mtu_bytes)


def roi_payload_bytes(w: int, h: int, channels: int = 3, sample_bytes: int = 1) -> int:
    """Payload bytes of one ROI crop transfer."""
    if w < 0 or h < 0:
        raise ValueError("ROI dimensions must be non-negative")
    return w * h * channels * sample_bytes
