"""Sensor <-> processor link accounting.

The paper's Table 1 splits HiRISE traffic into three flows:

* ``D1(S->P)`` — the compressed stage-1 frame, sensor to processor;
* ``D1(P->S)`` — the ROI descriptors (j boxes x 4 words), processor back to
  the sensor's selection encoder;
* ``D2(S->P)`` — the full-resolution ROI pixels, sensor to processor.

A :class:`TransferLedger` accumulates these per frame so pipelines can
report exactly the quantities of Fig. 7 and Table 3.  The :class:`LinkModel`
optionally adds per-transaction overhead and per-byte energy for users who
want a physical link (SPI/MIPI-flavored) rather than the paper's pure byte
count (the defaults reproduce the paper: zero overhead, zero link energy —
its energy analysis attributes everything to the ADC).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Bytes per ROI descriptor word (16-bit coordinates cover arrays to 65k px).
WORD_BYTES = 2

#: Words per ROI descriptor: x, y, W, H (paper: "j x (4 x Words)").
WORDS_PER_ROI = 4


def roi_descriptor_bytes(n_rois: int, word_bytes: int = WORD_BYTES) -> int:
    """Bytes for shipping ``n_rois`` box descriptors processor -> sensor."""
    if n_rois < 0:
        raise ValueError("n_rois must be non-negative")
    return n_rois * WORDS_PER_ROI * word_bytes


@dataclass(frozen=True)
class LinkModel:
    """Physical-link cost model.

    Attributes:
        per_transaction_overhead_bytes: header/trailer bytes added to each
            logical transfer (0 reproduces the paper's accounting).
        energy_per_byte: joules per payload byte moved (0 = paper's model,
            which folds transfer energy into the ADC count).
        bandwidth_bytes_per_s: optional link bandwidth for latency estimates.
    """

    per_transaction_overhead_bytes: int = 0
    energy_per_byte: float = 0.0
    bandwidth_bytes_per_s: float | None = None

    def __post_init__(self) -> None:
        # `not (x >= 0)` rather than `x < 0`: NaN must not slip through
        # and silently poison every downstream ledger total.
        if not (self.per_transaction_overhead_bytes >= 0):
            raise ValueError(
                f"link.per_transaction_overhead_bytes: must be >= 0, "
                f"got {self.per_transaction_overhead_bytes}"
            )
        if not (self.energy_per_byte >= 0):
            raise ValueError(
                f"link.energy_per_byte: must be >= 0, got {self.energy_per_byte}"
            )
        if self.bandwidth_bytes_per_s is not None and not (
            self.bandwidth_bytes_per_s > 0
        ):
            raise ValueError(
                f"link.bandwidth_bytes_per_s: must be positive (or None for "
                f"no latency model), got {self.bandwidth_bytes_per_s}"
            )

    def transfer_bytes(self, payload_bytes: int, n_transactions: int = 1) -> int:
        """Total bytes on the wire for a payload split over transactions.

        ``n_transactions=0`` is a legal idle link (no payload framed, no
        overhead charged); negative counts are rejected.
        """
        if payload_bytes < 0 or n_transactions < 0:
            raise ValueError("invalid payload/transaction count")
        return payload_bytes + self.per_transaction_overhead_bytes * n_transactions

    def energy(self, wire_bytes: int) -> float:
        return self.energy_per_byte * wire_bytes

    def latency_s(self, wire_bytes: int) -> float | None:
        if self.bandwidth_bytes_per_s is None:
            return None
        return wire_bytes / self.bandwidth_bytes_per_s


@dataclass
class TransferLedger:
    """Per-frame accumulator of the three HiRISE flows (bytes).

    Attributes:
        stage1_s2p: compressed frame bytes, sensor -> processor.
        stage1_p2s: ROI descriptor bytes, processor -> sensor.
        stage2_s2p: ROI pixel bytes, sensor -> processor.
        link: the physical-link model used for wire-level totals.
        transactions: logical transfer count (for overhead accounting).
    """

    stage1_s2p: int = 0
    stage1_p2s: int = 0
    stage2_s2p: int = 0
    link: LinkModel = field(default_factory=LinkModel)
    transactions: int = 0

    def add_stage1_frame(self, payload_bytes: int) -> None:
        self.stage1_s2p += int(payload_bytes)
        self.transactions += 1

    def add_roi_descriptors(self, n_rois: int) -> None:
        self.stage1_p2s += roi_descriptor_bytes(n_rois)
        self.transactions += 1

    def add_stage2_rois(self, payload_bytes: int, n_rois: int = 1) -> None:
        self.stage2_s2p += int(payload_bytes)
        self.transactions += max(int(n_rois), 0)

    @property
    def total_bytes(self) -> int:
        """Payload total ``D1(S->P) + D1(P->S) + D2(S->P)`` (paper Eq. 1)."""
        return self.stage1_s2p + self.stage1_p2s + self.stage2_s2p

    @property
    def wire_bytes(self) -> int:
        """Payload plus link overhead for the transactions actually logged.

        An idle frame — nothing transferred, nothing logged — costs 0
        wire bytes (it used to be charged one phantom transaction of
        overhead).
        """
        return self.link.transfer_bytes(self.total_bytes, self.transactions)

    @property
    def link_energy(self) -> float:
        return self.link.energy(self.wire_bytes)

    def breakdown(self) -> dict[str, int]:
        """Named byte counts, useful for tables."""
        return {
            "stage1_s2p": self.stage1_s2p,
            "stage1_p2s": self.stage1_p2s,
            "stage2_s2p": self.stage2_s2p,
            "total": self.total_bytes,
        }
