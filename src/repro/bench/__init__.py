"""Benchmark-harness helpers: tables, ASCII figures, experiment registry."""

from .figures import ascii_bar_chart, ascii_line_chart, series_csv
from .registry import EXPERIMENTS, Experiment, get_experiment
from .tables import Table

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "Table",
    "ascii_bar_chart",
    "ascii_line_chart",
    "get_experiment",
    "series_csv",
]
