"""Fixed-width table rendering for the benchmark harnesses.

Every benchmark prints its result in the same row/column structure as the
paper's table or figure, so EXPERIMENTS.md can be filled by copy-paste.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class Table:
    """A fixed-width text table.

    Args:
        title: printed above the table.
        columns: column headers.
        aligns: per-column 'l' or 'r' (defaults to right for all).
    """

    title: str
    columns: Sequence[str]
    aligns: Sequence[str] | None = None
    rows: list[list[str]] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append a row; cells are str()-ed, floats get 3 significant digits."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} cells, got {len(cells)}"
            )
        formatted = []
        for cell in cells:
            if isinstance(cell, float):
                formatted.append(f"{cell:.3g}")
            else:
                formatted.append(str(cell))
        self.rows.append(formatted)

    def render(self) -> str:
        aligns = list(self.aligns or ["r"] * len(self.columns))
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells: Sequence[str]) -> str:
            parts = []
            for cell, width, align in zip(cells, widths, aligns):
                parts.append(cell.ljust(width) if align == "l" else cell.rjust(width))
            return "  ".join(parts)

        sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
        lines = [self.title, sep, fmt(list(self.columns)), sep]
        lines += [fmt(row) for row in self.rows]
        lines.append(sep)
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console side effect
        print("\n" + self.render() + "\n")

    def to_markdown(self) -> str:
        """GitHub-flavored pipe table (header + alignment row + rows).

        The title is *not* included — markdown callers put it in a
        heading of their own.
        """
        aligns = list(self.aligns or ["r"] * len(self.columns))
        header = "| " + " | ".join(self.columns) + " |"
        rule = "| " + " | ".join(
            ":---" if a == "l" else "---:" for a in aligns
        ) + " |"
        rows = ["| " + " | ".join(row) + " |" for row in self.rows]
        return "\n".join([header, rule, *rows])

    def to_csv(self) -> str:
        """Comma-separated dump (header + rows)."""
        out = [",".join(self.columns)]
        out += [",".join(row) for row in self.rows]
        return "\n".join(out)
