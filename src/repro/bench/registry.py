"""Experiment registry: one entry per paper table/figure.

Maps each experiment to its description and the benchmark that regenerates
it, so documentation and tooling have a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One reproducible artifact of the paper.

    Attributes:
        exp_id: e.g. "table2" or "fig7".
        paper_ref: table/figure reference in the paper.
        description: what the artifact shows.
        bench: path of the benchmark that regenerates it.
        modules: main implementing modules.
    """

    exp_id: str
    paper_ref: str
    description: str
    bench: str
    modules: tuple[str, ...]


EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in (
        Experiment(
            "table1",
            "Table 1",
            "Analytical data-transfer/memory/ADC relations, HiRISE vs conventional",
            "benchmarks/bench_table1_analytical.py",
            ("repro.core.costs",),
        ),
        Experiment(
            "table2",
            "Table 2",
            "Stage-1 mAP: in-processor vs in-sensor scaling, RGB vs gray, 3 resolutions x 3 datasets",
            "benchmarks/bench_table2_accuracy.py",
            ("repro.datasets", "repro.sensor", "repro.ml"),
        ),
        Experiment(
            "fig5",
            "Fig. 5",
            "SPICE-style transients of the analog averaging circuit (2/4/192 inputs)",
            "benchmarks/bench_fig5_circuit.py",
            ("repro.analog",),
        ),
        Experiment(
            "fig6",
            "Fig. 6",
            "Two-stage peak memory vs pixel-array size, in-processor vs in-sensor",
            "benchmarks/bench_fig6_memory.py",
            ("repro.memory", "repro.core"),
        ),
        Experiment(
            "fig7",
            "Fig. 7",
            "Median data transfer vs pixel-array size for pooling 2/4/8 vs baseline",
            "benchmarks/bench_fig7_data_transfer.py",
            ("repro.transfer", "repro.core", "repro.datasets"),
        ),
        Experiment(
            "fig8",
            "Fig. 8",
            "Median sensor energy under pooling levels, RGB and grayscale",
            "benchmarks/bench_fig8_energy.py",
            ("repro.core.energy", "repro.datasets"),
        ),
        Experiment(
            "table3",
            "Table 3",
            "End-to-end: ROI, accuracy, SRAM, transfer, energy across 8 array sizes",
            "benchmarks/bench_table3_end_to_end.py",
            ("repro.core", "repro.memory", "repro.ml", "repro.datasets"),
        ),
        Experiment(
            "stream",
            "Ext. A",
            "Streaming video: frames/sec and transfer — per-frame vs batched vs temporal ROI reuse",
            "benchmarks/bench_stream_throughput.py",
            ("repro.stream", "repro.core", "repro.sensor"),
        ),
        Experiment(
            "service",
            "Ext. B",
            "Service engine: concurrent spec-driven batch vs sequential runs — bit-identical, faster",
            "benchmarks/bench_service_batch.py",
            ("repro.service", "repro.stream", "repro.core"),
        ),
        Experiment(
            "hotpath",
            "Ext. C",
            "Serving hot path: phase breakdown + batched stage-2 vs per-crop loop (BENCH_hotpath.json)",
            "benchmarks/bench_hotpath.py",
            ("repro.core.profiling", "repro.ml", "repro.service"),
        ),
        Experiment(
            "serving",
            "Ext. D",
            "Serving daemon: sustained RPS and p50/p99 latency over the socket, warm-cache hits bit-identical to serial runs",
            "benchmarks/bench_serving.py",
            ("repro.server", "repro.service"),
        ),
        Experiment(
            "sweep",
            "Figs. 6-8 / Table 2",
            "Declarative sweeps (repro sweep examples/sweeps/paper_*.json): paper trends + executor/cache bit-identity",
            "benchmarks/bench_sweep.py",
            ("repro.experiments", "repro.service", "repro.bench"),
        ),
        Experiment(
            "store",
            "Ext. E",
            "Persistent store: warm restarts replay bit-identical with zero disk misses; shm clip transport vs pickle (BENCH_store.json)",
            "benchmarks/bench_store.py",
            ("repro.store", "repro.service", "repro.server"),
        ),
        Experiment(
            "resilience",
            "Ext. F",
            "Fault injection: serving load under worker-crash + socket-drop plans completes 100% with replies byte-identical to a fault-free run (BENCH_resilience.json)",
            "benchmarks/bench_resilience.py",
            ("repro.faults", "repro.server", "repro.service"),
        ),
    )
}


def get_experiment(exp_id: str) -> Experiment:
    """Look up an experiment; raises ``KeyError`` with the known ids."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[exp_id]
