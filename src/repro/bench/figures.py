"""ASCII chart rendering: the harness's stand-in for the paper's figures.

Benchmarks regenerate each figure as (a) the underlying series printed as a
table/CSV and (b) a quick ASCII chart for eyeballing shape.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def ascii_bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart of labelled values.

    Args:
        values: label -> value (non-negative).
        width: bar width of the maximum value.
        unit: appended to the numeric annotation.
        title: chart heading.
    """
    if not values:
        return title
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * (int(round(value / vmax * width)) if vmax > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def ascii_line_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str] | None = None,
    height: int = 12,
    width: int = 64,
    title: str = "",
    logy: bool = False,
) -> str:
    """Multi-series line chart drawn with per-series glyphs.

    Args:
        series: name -> y values (all the same length).
        x_labels: optional tick labels (first and last are printed).
        height: chart rows.
        width: chart columns.
        title: heading.
        logy: log-scale the y axis (useful for memory/energy curves).
    """
    if not series:
        return title
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have the same length")
    n = lengths.pop()
    if n < 2:
        raise ValueError("series need at least two points")

    glyphs = "*o+x@%&$"
    all_vals = np.array([v for vs in series.values() for v in vs], dtype=float)
    if logy:
        if np.any(all_vals <= 0):
            raise ValueError("logy requires positive values")
        all_vals = np.log10(all_vals)
    lo, hi = float(all_vals.min()), float(all_vals.max())
    span = hi - lo if hi > lo else 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, ys) in enumerate(series.items()):
        glyph = glyphs[s_idx % len(glyphs)]
        ys_arr = np.asarray(ys, dtype=float)
        if logy:
            ys_arr = np.log10(ys_arr)
        for i, y in enumerate(ys_arr):
            col = int(round(i * (width - 1) / (n - 1)))
            row = int(round((hi - y) / span * (height - 1)))
            grid[row][col] = glyph

    lines = [title] if title else []
    axis_hi = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    axis_lo = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    pad = max(len(axis_hi), len(axis_lo))
    for r, row in enumerate(grid):
        label = axis_hi if r == 0 else (axis_lo if r == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    if x_labels:
        footer = f"{x_labels[0]} ... {x_labels[-1]}"
        lines.append(" " * (pad + 2) + footer)
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)


def series_csv(
    series: Mapping[str, Sequence[float]], x_labels: Sequence[str]
) -> str:
    """CSV dump of chart series, x labels in the first column."""
    names = list(series)
    out = [",".join(["x"] + names)]
    for i, x in enumerate(x_labels):
        out.append(",".join([str(x)] + [f"{series[n][i]:.6g}" for n in names]))
    return "\n".join(out)
