"""Cumulative accounting for video runs: per-frame stats and stream totals.

A single :class:`~repro.core.PipelineOutcome` answers "what did this frame
cost"; a stream needs the same answer over thousands of frames without
keeping thousands of images alive.  :class:`FrameStats` strips one outcome
down to its numbers (a few hundred bytes per frame), and
:class:`StreamOutcome` accumulates them into the quantities a deployment
cares about: total bytes on the link, total sensor energy, peak processor
image memory, achieved frames/sec, and how many frames temporal ROI reuse
managed to run without any stage-1 work at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from ..core.pipeline import PipelineOutcome


def _require(value: object, fieldname: str, kind: type, type_name: str):
    # bool is an int subclass; an int field must still reject True/False,
    # and a bool field must reject 0/1 — exact types keep round-trips exact.
    if kind is float:
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif kind is int:
        ok = isinstance(value, int) and not isinstance(value, bool)
    else:
        ok = isinstance(value, kind)
    if not ok:
        raise ValueError(f"{fieldname}: expected {type_name}, got {value!r}")
    return value


@dataclass(frozen=True)
class FrameStats:
    """One frame's costs, decoupled from its images.

    Attributes:
        frame_index: position in the stream.
        ran_stage1: whether the pooled-frame conversion + detector ran.
        reused_rois: whether the frame's windows came from temporal reuse.
        reason: the reuse policy's decision label ("stable", "warmup",
            "unstable", "revalidate", ...) or "" outside reuse mode.
        n_rois: readout windows used for stage 2.
        stage1_bytes / roi_feedback_bytes / stage2_bytes: the paper's three
            link flows (D1 S->P, D1 P->S, D2 S->P) for this frame.
        stage1_conversions / stage2_conversions: ADC conversion counts.
        energy_j: total sensor energy for the frame.
        peak_image_memory_bytes: Eq. 2 resident-image peak for the frame.
    """

    frame_index: int
    ran_stage1: bool
    reused_rois: bool
    reason: str
    n_rois: int
    stage1_bytes: int
    roi_feedback_bytes: int
    stage2_bytes: int
    stage1_conversions: int
    stage2_conversions: int
    energy_j: float
    peak_image_memory_bytes: int

    @classmethod
    def from_outcome(
        cls,
        frame_index: int,
        outcome: PipelineOutcome,
        ran_stage1: bool,
        reused_rois: bool = False,
        reason: str = "",
    ) -> "FrameStats":
        """Condense a pipeline outcome into its per-frame ledger row."""
        ledger = outcome.ledger
        return cls(
            frame_index=frame_index,
            ran_stage1=ran_stage1,
            reused_rois=reused_rois,
            reason=reason,
            n_rois=len(outcome.rois),
            stage1_bytes=ledger.stage1_s2p,
            roi_feedback_bytes=ledger.stage1_p2s,
            stage2_bytes=ledger.stage2_s2p,
            stage1_conversions=outcome.stage1_conversions,
            stage2_conversions=outcome.stage2_conversions,
            energy_j=outcome.energy.total,
            peak_image_memory_bytes=outcome.peak_image_memory_bytes,
        )

    @property
    def total_bytes(self) -> int:
        """All three flows for this frame (paper Eq. 1, per frame)."""
        return self.stage1_bytes + self.roi_feedback_bytes + self.stage2_bytes

    # -- serialization (the serving protocol's per-frame payload) ---------------

    def to_dict(self) -> dict:
        """Plain-data form; round-trips exactly through :meth:`from_dict`.

        Every field is a JSON scalar (ints, bools, strings, one float), and
        Python floats round-trip exactly through JSON text, so a frame row
        that crosses a socket compares bit-equal to the one that was sent.
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "FrameStats":
        """Parse a :meth:`to_dict` payload; errors name the offending field."""
        _require(data, "frame_stats", dict, "dict")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"frame_stats: unknown field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        missing = sorted(known - set(data))
        if missing:
            raise ValueError(f"frame_stats: missing field(s) {missing}")
        kwargs = {}
        for f in fields(cls):
            kind = {"int": int, "bool": bool, "str": str, "float": float}[f.type]
            value = _require(data[f.name], f"frame_stats.{f.name}", kind, f.type)
            kwargs[f.name] = float(value) if kind is float else value
        return cls(**kwargs)


@dataclass
class StreamOutcome:
    """Everything a stream run produced and cost, cumulatively.

    Attributes:
        system: "hirise" or "conventional".
        frames: per-frame ledger rows, in stream order.
        outcomes: full per-frame outcomes when the runner was asked to keep
            them (``keep_outcomes=True``); empty otherwise to bound memory.
        wall_time_s: measured wall-clock time of the run.
    """

    system: str
    frames: list[FrameStats] = field(default_factory=list)
    outcomes: list[PipelineOutcome] = field(default_factory=list)
    wall_time_s: float = 0.0

    def append(
        self,
        stats: FrameStats,
        outcome: PipelineOutcome | None = None,
    ) -> None:
        self.frames.append(stats)
        if outcome is not None:
            self.outcomes.append(outcome)

    # -- aggregates -------------------------------------------------------------

    @property
    def n_frames(self) -> int:
        return len(self.frames)

    @property
    def stage1_frames(self) -> int:
        """Frames that paid for the pooled conversion + detector."""
        return sum(f.ran_stage1 for f in self.frames)

    @property
    def reused_frames(self) -> int:
        """Frames served entirely from temporal ROI reuse."""
        return sum(f.reused_rois for f in self.frames)

    @property
    def stage1_bytes(self) -> int:
        return sum(f.stage1_bytes for f in self.frames)

    @property
    def roi_feedback_bytes(self) -> int:
        return sum(f.roi_feedback_bytes for f in self.frames)

    @property
    def stage2_bytes(self) -> int:
        return sum(f.stage2_bytes for f in self.frames)

    @property
    def total_bytes(self) -> int:
        return sum(f.total_bytes for f in self.frames)

    @property
    def total_energy_j(self) -> float:
        return sum(f.energy_j for f in self.frames)

    @property
    def total_conversions(self) -> int:
        return sum(f.stage1_conversions + f.stage2_conversions for f in self.frames)

    @property
    def peak_image_memory_bytes(self) -> int:
        """Worst single-frame resident-image peak across the stream."""
        return max((f.peak_image_memory_bytes for f in self.frames), default=0)

    @property
    def frames_per_second(self) -> float:
        """Achieved simulation throughput (0 when untimed)."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.n_frames / self.wall_time_s

    @property
    def mean_bytes_per_frame(self) -> float:
        return self.total_bytes / self.n_frames if self.frames else 0.0

    @property
    def mean_energy_per_frame_j(self) -> float:
        return self.total_energy_j / self.n_frames if self.frames else 0.0

    def breakdown(self) -> dict[str, int]:
        """Cumulative byte counts per flow, mirrored on the ledger API."""
        return {
            "stage1_s2p": self.stage1_bytes,
            "stage1_p2s": self.roi_feedback_bytes,
            "stage2_s2p": self.stage2_bytes,
            "total": self.total_bytes,
        }

    def report(self) -> str:
        """Human-readable stream summary."""
        lines = [
            f"[{self.system}] {self.n_frames} frames "
            f"({self.stage1_frames} stage-1, {self.reused_frames} reused)",
            f"  transfer: {self.total_bytes / 1024:.1f} kB total, "
            f"{self.mean_bytes_per_frame / 1024:.1f} kB/frame "
            f"(S->P1 {self.stage1_bytes / 1024:.1f}, "
            f"P->S {self.roi_feedback_bytes} B, "
            f"S->P2 {self.stage2_bytes / 1024:.1f})",
            f"  energy: {self.total_energy_j * 1e3:.4f} mJ total, "
            f"{self.mean_energy_per_frame_j * 1e6:.2f} uJ/frame",
            f"  ADC conversions: {self.total_conversions:,}",
            f"  peak image memory: {self.peak_image_memory_bytes / 1024:.1f} kB",
        ]
        if self.wall_time_s > 0:
            lines.append(
                f"  throughput: {self.frames_per_second:.1f} frames/s "
                f"({self.wall_time_s * 1e3:.0f} ms wall)"
            )
        return "\n".join(lines)

    # -- serialization (the serving protocol's whole-result payload) ------------

    def to_dict(self) -> dict:
        """Plain-data form; round-trips exactly through :meth:`from_dict`.

        ``outcomes`` (full per-frame :class:`PipelineOutcome` objects, kept
        only under ``keep_outcomes=True``) hold live images and are
        deliberately not serializable — the ledger rows are the wire
        contract.  Serializing an outcome that kept them raises so a
        caller never silently loses data.
        """
        if self.outcomes:
            raise ValueError(
                "stream_outcome.outcomes: full per-frame outcomes are not "
                "serializable; run without keep_outcomes to send this "
                "result over the wire"
            )
        return {
            "system": self.system,
            "frames": [f.to_dict() for f in self.frames],
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamOutcome":
        """Parse a :meth:`to_dict` payload; errors name the offending field."""
        _require(data, "stream_outcome", dict, "dict")
        known = {"system", "frames", "wall_time_s"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"stream_outcome: unknown field(s) {unknown}; "
                f"known fields: {sorted(known)}"
            )
        system = _require(data.get("system", ""), "stream_outcome.system", str, "str")
        rows = _require(
            data.get("frames", []), "stream_outcome.frames", list, "a list of dicts"
        )
        wall = _require(
            data.get("wall_time_s", 0.0), "stream_outcome.wall_time_s", float, "float"
        )
        return cls(
            system=system,
            frames=[FrameStats.from_dict(row) for row in rows],
            wall_time_s=float(wall),
        )
