"""Synthetic video sources: the paper's workloads, set in motion.

HiRISE targets always-on vision — pedestrian surveillance (CrowdHuman /
DHDCampus-flavored) and aerial monitoring (VisDrone-flavored).  The seed
repo synthesizes those as single scenes; streaming needs *clips*, so this
module animates the same procedural actors over a textured backdrop with
per-actor constant velocities plus optional jitter.

Every clip comes with per-frame ground-truth boxes and a matching
stand-in stage-1 detector (:func:`ground_truth_detector`) so stream
experiments can isolate the *system* costs (transfer, energy, reuse
behavior) from detector quality, exactly like the single-frame benchmarks
do.  Swap in ``repro.ml.CorrelationDetector`` for a learned stage 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..datasets.shapes import draw_person, draw_vehicle
from ..datasets.textures import colorize, value_noise
from ..ml import Detection

#: ``(x, y, w, h)`` ground-truth box in array coordinates.
Box = tuple[float, float, float, float]


@dataclass(frozen=True)
class Actor:
    """One moving object in a synthetic clip.

    Attributes:
        kind: "person" or a :data:`repro.datasets.shapes.VEHICLE_STYLES` key.
        x, y: start position (person: center-x / head-top; vehicle: center).
        size: person height or vehicle length, in pixels.
        vx, vy: velocity in px/frame.
    """

    kind: str
    x: float
    y: float
    size: float
    vx: float
    vy: float = 0.0


@dataclass(frozen=True)
class SyntheticClip:
    """A generated clip plus its ground truth.

    Attributes:
        frames: ``(H, W, 3)`` float images in [0, 1].
        ground_truth: per-frame actor boxes, aligned with ``frames``.
        resolution: ``(width, height)``.
    """

    frames: list[np.ndarray]
    ground_truth: list[list[Box]]
    resolution: tuple[int, int]

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def nbytes(self) -> int:
        """Total frame-buffer size (what a pickle would have to move)."""
        return sum(f.nbytes for f in self.frames)

    # Clips cross process boundaries (the service layer's process
    # executor, spawn-safe work units), so pickling must be cheap: a
    # uniform clip serializes as ONE contiguous (N, H, W, C) block
    # instead of N separately-framed arrays.  Restored frames are views
    # into that block — read-only consumers (every pipeline path copies
    # before mutating) see bit-identical data.

    def __getstate__(self) -> dict:
        state = {"ground_truth": self.ground_truth, "resolution": self.resolution}
        uniform = len({(f.shape, f.dtype.str) for f in self.frames}) == 1
        if self.frames and uniform:
            state["frame_stack"] = np.stack(self.frames)
        else:
            state["frames"] = self.frames
        return state

    def __setstate__(self, state: dict) -> None:
        stack = state.pop("frame_stack", None)
        frames = list(stack) if stack is not None else state.pop("frames")
        object.__setattr__(self, "frames", frames)
        object.__setattr__(self, "ground_truth", state["ground_truth"])
        object.__setattr__(self, "resolution", state["resolution"])


def _render_clip(
    actors: Sequence[Actor],
    n_frames: int,
    resolution: tuple[int, int],
    backdrop: np.ndarray,
    seed: int,
    jitter: float,
) -> SyntheticClip:
    width, height = resolution
    frames: list[np.ndarray] = []
    ground_truth: list[list[Box]] = []
    jitter_rng = np.random.default_rng((seed, 999_331))
    for t in range(n_frames):
        canvas = backdrop.copy()
        boxes: list[Box] = []
        for i, actor in enumerate(actors):
            dx = jitter * jitter_rng.normal() if jitter else 0.0
            dy = jitter * jitter_rng.normal() if jitter else 0.0
            x = actor.x + actor.vx * t + dx
            y = actor.y + actor.vy * t + dy
            # A per-actor generator keeps appearance constant across frames.
            appearance = np.random.default_rng((seed, i))
            if actor.kind == "person":
                body, _ = draw_person(
                    canvas, appearance, x, y, actor.size, 0.3, 0.55
                )
                boxes.append(body)
            else:
                boxes.append(
                    draw_vehicle(canvas, appearance, actor.kind, x, y, actor.size)
                )
        frames.append(np.clip(canvas, 0.0, 1.0))
        ground_truth.append(boxes)
    return SyntheticClip(frames, ground_truth, resolution)


def pedestrian_clip(
    n_frames: int = 32,
    resolution: tuple[int, int] = (256, 192),
    n_walkers: int = 3,
    seed: int = 4,
    speed: float = 2.0,
    jitter: float = 0.0,
) -> SyntheticClip:
    """Pedestrians crossing a textured plaza (CrowdHuman-flavored).

    Args:
        n_frames: clip length.
        resolution: ``(width, height)`` of the pixel array.
        n_walkers: number of pedestrians.
        seed: master seed (layout, appearance, texture).
        speed: nominal walking speed in px/frame (sign alternates).
        jitter: sigma of per-frame position jitter (0 = perfectly linear
            motion, the friendliest case for ROI reuse).
    """
    width, height = resolution
    rng = np.random.default_rng(seed)
    backdrop = colorize(
        value_noise((height, width), rng, octaves=4),
        (0.5, 0.49, 0.47),
        (0.66, 0.64, 0.61),
    )
    actors = []
    for i in range(n_walkers):
        h = height * rng.uniform(0.14, 0.26)
        direction = 1.0 if i % 2 == 0 else -1.0
        margin = 0.15 * width
        x0 = rng.uniform(margin, width - margin)
        y0 = rng.uniform(0.05 * height, height - 1.3 * h)
        actors.append(
            Actor(
                kind="person",
                x=x0,
                y=y0,
                size=h,
                vx=direction * speed * rng.uniform(0.7, 1.3),
            )
        )
    return _render_clip(actors, n_frames, resolution, backdrop, seed, jitter)


def drone_traffic_clip(
    n_frames: int = 32,
    resolution: tuple[int, int] = (256, 192),
    n_vehicles: int = 4,
    seed: int = 11,
    speed: float = 3.0,
    jitter: float = 0.0,
) -> SyntheticClip:
    """Top-down road traffic under a drone (VisDrone-flavored).

    Vehicles drive along horizontal lanes at lane-dependent speeds.
    """
    width, height = resolution
    rng = np.random.default_rng(seed)
    backdrop = colorize(
        value_noise((height, width), rng, octaves=3),
        (0.32, 0.33, 0.34),
        (0.45, 0.46, 0.47),
    )
    kinds = ["car", "car", "van", "truck"]
    actors = []
    for i in range(n_vehicles):
        lane_y = height * (i + 1) / (n_vehicles + 1)
        direction = 1.0 if i % 2 == 0 else -1.0
        actors.append(
            Actor(
                kind=kinds[i % len(kinds)],
                x=rng.uniform(0.2 * width, 0.8 * width),
                y=lane_y,
                size=width * rng.uniform(0.08, 0.14),
                vx=direction * speed * rng.uniform(0.8, 1.2),
            )
        )
    return _render_clip(actors, n_frames, resolution, backdrop, seed, jitter)


def ground_truth_detector(
    clip: SyntheticClip, score: float = 0.9, label: str = "object"
) -> tuple[Callable[[np.ndarray], list[Detection]], Callable[[int], None]]:
    """A stand-in stage-1 model that reads the clip's ground truth.

    The detector receives the *pooled* stage-1 frame, so boxes are scaled
    down by the pooling factor inferred from the frame width.  Wire the
    returned ``on_frame`` callback into :meth:`StreamRunner.run` so the
    detector knows which frame each call belongs to.

    Returns:
        ``(detect, on_frame)``.
    """
    state = {"frame": 0}
    width = clip.resolution[0]

    def on_frame(index: int) -> None:
        state["frame"] = index

    def detect(pooled_frame: np.ndarray) -> list[Detection]:
        k = width // pooled_frame.shape[1]
        boxes = clip.ground_truth[min(state["frame"], len(clip.ground_truth) - 1)]
        return [
            Detection(label, score, x / k, y / k, w / k, h / k)
            for x, y, w, h in boxes
        ]

    return detect, on_frame
