"""Streaming video subsystem: HiRISE over frame sequences.

The paper evaluates single exposures; deployments watch video.  This
package scales the single-frame pipelines to streams along three axes:

* :class:`StreamRunner` — drives a pipeline over any frame iterable with
  per-frame seeds, in per-frame, batched, or ROI-reuse mode;
* :class:`TemporalROIReuse` — an IoU-gated policy that skips the pooled
  readout *and* the stage-1 detector on temporally-stable frames;
* :class:`StreamOutcome` / :class:`FrameStats` — the cumulative ledger:
  transfer, energy, conversions, memory, and throughput across the stream;
* :mod:`repro.stream.source` — synthetic pedestrian/drone clips with ground
  truth, the moving counterparts of the paper's workloads.
"""

from .ledger import FrameStats, StreamOutcome
from .reuse import ReuseDecision, TemporalROIReuse, rois_stable
from .runner import StreamRunner
from .source import (
    Actor,
    SyntheticClip,
    drone_traffic_clip,
    ground_truth_detector,
    pedestrian_clip,
)

__all__ = [
    "Actor",
    "FrameStats",
    "ReuseDecision",
    "StreamOutcome",
    "StreamRunner",
    "SyntheticClip",
    "TemporalROIReuse",
    "drone_traffic_clip",
    "ground_truth_detector",
    "pedestrian_clip",
    "rois_stable",
]
