"""The stream runner: HiRISE (or the baseline) over multi-frame video.

:class:`StreamRunner` turns the single-exposure pipelines into a video
engine with three execution modes, all sharing the phase methods of
:class:`~repro.core.HiRISEPipeline`:

* **per-frame** — the reference: every frame pays the full two-stage flow;
* **batched** (``batch_size > 1``) — stage-1 exposure + analog pooling for a
  window of frames runs as one vectorized NumPy pass
  (:class:`~repro.sensor.BatchSensorReadout`), bit-identical to the
  per-frame loop but without its Python overhead;
* **reuse** (``reuse=...``) — a :class:`~repro.stream.TemporalROIReuse`
  policy skips the pooled conversion *and* the stage-1 detector on frames
  where recent results proved stable, reading only predicted ROI windows.

Every mode returns a :class:`~repro.stream.StreamOutcome` whose per-frame
rows and cumulative totals make the modes directly comparable — the
quantities ``benchmarks/bench_stream_throughput.py`` reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.pipeline import ConventionalPipeline, HiRISEPipeline
from ..core.profiling import profiled
from ..sensor import BatchSensorReadout
from ..transfer import TransferLedger
from .ledger import FrameStats, StreamOutcome
from .reuse import TemporalROIReuse


_EXHAUSTED = object()


def _seeded(frames: Iterable[np.ndarray], frame_seeds) -> Iterator[tuple[int, int, np.ndarray]]:
    """Yield ``(index, seed, frame)``; seeds default to the frame index.

    Never materializes ``frames`` — generators stream through untouched, so
    the runner's bounded-memory contract holds with explicit seeds too.  A
    length mismatch is raised eagerly when both sizes are known, otherwise
    at the point one iterable runs dry.
    """
    if frame_seeds is None:
        for idx, frame in enumerate(frames):
            yield idx, idx, frame
        return
    if hasattr(frame_seeds, "__len__") and hasattr(frames, "__len__"):
        if len(frame_seeds) != len(frames):
            raise ValueError(
                f"{len(frame_seeds)} frame seeds for {len(frames)} frames"
            )
    # Explicit dual iteration rather than zip(strict=True): the strict-zip
    # mismatch error is only distinguishable from a ValueError raised
    # *inside* the iterables by its message text, and an error from a frame
    # source must surface untouched with its own traceback.
    frame_it, seed_it = iter(frames), iter(frame_seeds)
    idx = 0
    while True:
        frame = next(frame_it, _EXHAUSTED)
        seed = next(seed_it, _EXHAUSTED)
        if frame is _EXHAUSTED and seed is _EXHAUSTED:
            return
        if frame is _EXHAUSTED or seed is _EXHAUSTED:
            raise ValueError("frame seeds and frames have different lengths")
        yield idx, seed, frame
        idx += 1


@dataclass
class StreamRunner:
    """Runs a pipeline over a frame sequence and keeps the books.

    Attributes:
        pipeline: a :class:`~repro.core.HiRISEPipeline` (all modes) or a
            :class:`~repro.core.ConventionalPipeline` (per-frame only).
        reuse: optional temporal ROI reuse policy; when set, frames the
            policy deems stable skip stage 1 entirely.  Mutually exclusive
            with ``batch_size > 1`` (reuse decisions are sequential).
        batch_size: stage-1 frames vectorized per NumPy pass (HiRISE only).
        keep_outcomes: retain every full :class:`PipelineOutcome` on the
            stream outcome (costs memory; off by default so long streams
            stay ledger-sized).
        on_stats: optional callback invoked with each frame's
            :class:`~repro.stream.FrameStats` the moment it is recorded —
            the hook the serving layer uses to stream ledgers to a client
            while the run is still in flight.  Called in stream order, on
            the thread driving the run.
    """

    pipeline: HiRISEPipeline | ConventionalPipeline
    reuse: TemporalROIReuse | None = None
    batch_size: int = 1
    keep_outcomes: bool = False
    on_stats: Callable[[FrameStats], None] | None = None

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.reuse is not None and self.batch_size > 1:
            raise ValueError(
                "temporal ROI reuse decides frame-by-frame; it cannot be "
                "combined with batched stage-1 readout"
            )
        if isinstance(self.pipeline, ConventionalPipeline):
            if self.reuse is not None or self.batch_size > 1:
                raise ValueError(
                    "reuse/batching are HiRISE features; the conventional "
                    "baseline ships every frame in full"
                )

    def run(
        self,
        frames: Iterable[np.ndarray],
        frame_seeds: Sequence[int] | None = None,
        on_frame: Callable[[int], None] | None = None,
    ) -> StreamOutcome:
        """Process a frame sequence end to end.

        Args:
            frames: the clip — any iterable of ``(H, W, 3)`` images (a list,
                a generator, a dataset loader).  Batched mode materializes
                at most ``batch_size`` frames at a time.
            frame_seeds: per-frame temporal-noise seeds (default: indices).
            on_frame: optional callback invoked with the frame index before
                the frame's *processor-side* work — detector, stage 2 —
                runs (stateful detectors, loggers).  In batched mode the
                chunk's sensor-side exposure + pooling happens first, like
                a real sensor streaming exposures ahead of the processor;
                per frame, the callback still precedes the detector call.

        Returns:
            :class:`StreamOutcome` with per-frame stats and totals.
        """
        conventional = isinstance(self.pipeline, ConventionalPipeline)
        outcome = StreamOutcome(
            system="conventional" if conventional else "hirise"
        )
        start = time.perf_counter()
        if conventional:
            self._run_per_frame(frames, frame_seeds, on_frame, outcome)
        elif self.reuse is not None:
            self._run_with_reuse(frames, frame_seeds, on_frame, outcome)
        elif self.batch_size > 1:
            self._run_batched(frames, frame_seeds, on_frame, outcome)
        else:
            self._run_per_frame(frames, frame_seeds, on_frame, outcome)
        outcome.wall_time_s = time.perf_counter() - start
        return outcome

    # -- modes -------------------------------------------------------------------

    def _record(
        self,
        stream: StreamOutcome,
        idx: int,
        result,
        ran_stage1: bool,
        reused: bool = False,
        reason: str = "",
    ) -> None:
        stats = FrameStats.from_outcome(
            idx, result, ran_stage1=ran_stage1, reused_rois=reused, reason=reason
        )
        stream.append(stats, result if self.keep_outcomes else None)
        if self.on_stats is not None:
            self.on_stats(stats)

    def _run_per_frame(self, frames, frame_seeds, on_frame, stream: StreamOutcome) -> None:
        # The conventional baseline has no pooled-readout stage to count.
        ran_stage1 = isinstance(self.pipeline, HiRISEPipeline)
        for idx, seed, frame in _seeded(frames, frame_seeds):
            if on_frame is not None:
                on_frame(idx)
            result = self.pipeline.run(frame, frame_seed=seed)
            self._record(stream, idx, result, ran_stage1=ran_stage1)

    def _run_with_reuse(self, frames, frame_seeds, on_frame, stream: StreamOutcome) -> None:
        policy = self.reuse
        # Each run() is an independent stream: stale tracks from a previous
        # clip must never grant reuse on scenes that were never detected.
        policy.reset()
        for idx, seed, frame in _seeded(frames, frame_seeds):
            if on_frame is not None:
                on_frame(idx)
            decision = policy.propose()
            if decision.reuse:
                result = self.pipeline.run_stage2_only(
                    frame, decision.rois, frame_seed=seed
                )
                self._record(
                    stream, idx, result,
                    ran_stage1=False, reused=True, reason=decision.reason,
                )
            else:
                result = self.pipeline.run(frame, frame_seed=seed)
                policy.observe(result.rois)
                self._record(
                    stream, idx, result, ran_stage1=True, reason=decision.reason
                )

    def _run_batched(self, frames, frame_seeds, on_frame, stream: StreamOutcome) -> None:
        pipeline = self.pipeline
        cfg = pipeline.config
        chunk: list[tuple[int, int, np.ndarray]] = []

        def flush() -> None:
            if not chunk:
                return
            # Same phase taxonomy as the per-frame path; chunked sensor
            # work counts one profiler span per flush, not per frame.
            with profiled(pipeline.profiler, "expose"):
                batch = BatchSensorReadout.from_images(
                    [frame for _, _, frame in chunk],
                    adc_bits=cfg.adc_bits,
                    noise=pipeline.noise,
                    pooling=pipeline.pooling_model,
                    frame_seeds=[seed for _, seed, _ in chunk],
                )
            with profiled(pipeline.profiler, "stage1"), profiled(
                pipeline.profiler, "read"
            ):
                stage1_results = batch.read_compressed(
                    cfg.pool_k, grayscale=cfg.grayscale_stage1
                )
            for (idx, _, _), readout, stage1 in zip(
                chunk, batch.readouts, stage1_results
            ):
                if on_frame is not None:
                    on_frame(idx)
                ledger = TransferLedger(link=pipeline.link)
                ledger.add_stage1_frame(stage1.data_bytes)
                result = pipeline.complete_from_stage1(readout, stage1, ledger)
                self._record(stream, idx, result, ran_stage1=True)
            chunk.clear()

        for idx, seed, frame in _seeded(frames, frame_seeds):
            chunk.append((idx, seed, frame))
            if len(chunk) >= self.batch_size:
                flush()
        flush()
