"""The stream runner: HiRISE (or the baseline) over multi-frame video.

:class:`StreamRunner` turns the single-exposure pipelines into a video
engine, all modes sharing the phase methods of
:class:`~repro.core.HiRISEPipeline`:

* **per-frame** (``window=1``) — the reference: every frame pays the full
  two-stage flow, one Python iteration per frame;
* **windowed** (``window > 1``) — stage-1 exposure + analog pooling + ADC
  for a window of frames runs as one vectorized NumPy pass
  (:class:`~repro.sensor.BatchSensorReadout`) into a preallocated exposure
  buffer, bit-identical to the per-frame loop but without its Python
  overhead;
* **reuse** (``reuse=...``) — a :class:`~repro.stream.TemporalROIReuse`
  policy skips the pooled conversion *and* the stage-1 detector on frames
  where recent results proved stable, reading only predicted ROI windows.
  Reuse composes with ``window > 1``: the sensor exposes the whole window
  ahead of the processor, and each frame's pooled stage-1 result is used
  only where the policy demands a fresh detection — reused frames read
  their ROI crops straight from the window's exposure buffer.

Every mode returns a :class:`~repro.stream.StreamOutcome` whose per-frame
rows and cumulative totals make the modes directly comparable — the
quantities ``benchmarks/bench_stream_throughput.py`` reports.  Whatever
the window size, per-frame results are **bit-identical** to the
``window=1`` loop (the contract ``tests/property/test_stream_equivalence.py``
states as a property).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from ..core.pipeline import ConventionalPipeline, HiRISEPipeline, PipelineOutcome
from ..core.profiling import profiled
from ..sensor import BatchSensorReadout
from ..transfer import TransferLedger
from .ledger import FrameStats, StreamOutcome
from .reuse import TemporalROIReuse


_EXHAUSTED = object()


def _seeded(
    frames: Iterable[np.ndarray], frame_seeds, label: str = ""
) -> Iterator[tuple[int, int, np.ndarray]]:
    """Yield ``(index, seed, frame)``; seeds default to the frame index.

    Never materializes ``frames`` — generators stream through untouched, so
    the runner's bounded-memory contract holds with explicit seeds too.  A
    length mismatch is raised eagerly when both sizes are known, otherwise
    at the point one iterable runs dry; ``label`` (the scenario/source
    name) prefixes the error so a failing stream is identifiable in a
    batch.
    """
    where = f"stream {label!r}: " if label else ""
    if frame_seeds is None:
        for idx, frame in enumerate(frames):
            yield idx, idx, frame
        return
    if hasattr(frame_seeds, "__len__") and hasattr(frames, "__len__"):
        if len(frame_seeds) != len(frames):
            raise ValueError(
                f"{where}{len(frame_seeds)} frame seeds for {len(frames)} frames"
            )
    # Explicit dual iteration rather than zip(strict=True): the strict-zip
    # mismatch error is only distinguishable from a ValueError raised
    # *inside* the iterables by its message text, and an error from a frame
    # source must surface untouched with its own traceback.
    frame_it, seed_it = iter(frames), iter(frame_seeds)
    idx = 0
    while True:
        frame = next(frame_it, _EXHAUSTED)
        seed = next(seed_it, _EXHAUSTED)
        if frame is _EXHAUSTED and seed is _EXHAUSTED:
            return
        if frame is _EXHAUSTED or seed is _EXHAUSTED:
            raise ValueError(
                f"{where}frame seeds and frames have different lengths"
            )
        yield idx, seed, frame
        idx += 1


@dataclass
class StreamRunner:
    """Runs a pipeline over a frame sequence and keeps the books.

    Attributes:
        pipeline: a :class:`~repro.core.HiRISEPipeline` (all modes) or a
            :class:`~repro.core.ConventionalPipeline` (per-frame only).
        reuse: optional temporal ROI reuse policy; when set, frames the
            policy deems stable skip stage 1 entirely.  Composes with
            ``window > 1`` (the window is exposed ahead speculatively;
            pooled results are discarded on reused frames).
        batch_size: legacy alias for ``window`` (HiRISE only, no reuse) —
            kept for spec compatibility; new callers should set ``window``.
        keep_outcomes: retain every full :class:`PipelineOutcome` on the
            stream outcome (costs memory; off by default so long streams
            stay ledger-sized).
        on_stats: optional callback invoked with each frame's
            :class:`~repro.stream.FrameStats` the moment it is recorded —
            the hook the serving layer uses to stream ledgers to a client
            while the run is still in flight.  Called in stream order, on
            the thread driving the run — whatever the window size.
        window: stage-1 frames vectorized per NumPy pass (HiRISE only).
            ``window=1`` reproduces the per-frame loop exactly; any window
            is bit-identical to it.
        label: scenario/source name used in error messages ("" = unnamed);
            the engine sets it to the scenario label.
    """

    pipeline: HiRISEPipeline | ConventionalPipeline
    reuse: TemporalROIReuse | None = None
    batch_size: int = 1
    keep_outcomes: bool = False
    on_stats: Callable[[FrameStats], None] | None = None
    window: int = 1
    label: str = ""
    #: Reusable (window, H, W, 3) float64 exposure stack for windowed mode;
    #: allocated on first flush, re-used for every later window (and run).
    _expose_buf: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window: must be >= 1, got {self.window}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size: must be >= 1, got {self.batch_size}")
        if self.batch_size > 1 and self.window > 1:
            raise ValueError(
                "window: mutually exclusive with batch_size (its legacy "
                "alias); set only window"
            )
        if self.reuse is not None and self.batch_size > 1:
            raise ValueError(
                "temporal ROI reuse decides frame-by-frame; it cannot be "
                "combined with batched stage-1 readout (use window=, which "
                "composes with reuse)"
            )
        if isinstance(self.pipeline, ConventionalPipeline):
            if self.reuse is not None or self.batch_size > 1 or self.window > 1:
                raise ValueError(
                    "reuse/windowing are HiRISE features; the conventional "
                    "baseline ships every frame in full"
                )

    @property
    def effective_window(self) -> int:
        """The stage-1 vectorization width actually driven (>= 1)."""
        return self.window if self.window > 1 else self.batch_size

    def run(
        self,
        frames: Iterable[np.ndarray],
        frame_seeds: Sequence[int] | None = None,
        on_frame: Callable[[int], None] | None = None,
    ) -> StreamOutcome:
        """Process a frame sequence end to end.

        Args:
            frames: the clip — any iterable of ``(H, W, 3)`` images (a list,
                a generator, a dataset loader).  Windowed mode materializes
                at most ``window`` frames at a time.
            frame_seeds: per-frame temporal-noise seeds (default: indices).
            on_frame: optional callback invoked with the frame index before
                the frame's *processor-side* work — detector, stage 2 —
                runs (stateful detectors, loggers).  In windowed mode the
                window's sensor-side exposure + pooling happens first, like
                a real sensor streaming exposures ahead of the processor;
                per frame, the callback still precedes the detector call.

        Returns:
            :class:`StreamOutcome` with per-frame stats and totals.
        """
        conventional = isinstance(self.pipeline, ConventionalPipeline)
        outcome = StreamOutcome(
            system="conventional" if conventional else "hirise"
        )
        if self.reuse is not None:
            # Each run() is an independent stream: stale tracks from a
            # previous clip must never grant reuse on scenes that were
            # never detected.
            self.reuse.reset()
        window = 1 if conventional else self.effective_window
        start = time.perf_counter()
        self._drive(frames, frame_seeds, on_frame, outcome, window)
        outcome.wall_time_s = time.perf_counter() - start
        return outcome

    # -- the one dispatch loop ---------------------------------------------------

    def _drive(
        self,
        frames,
        frame_seeds,
        on_frame,
        stream: StreamOutcome,
        window: int,
    ) -> None:
        """Drive every mode through one window-chunked loop.

        ``window=1`` degenerates to the classic per-frame iteration (each
        chunk is a single frame served by the scalar phase methods);
        ``window>1`` flushes whole chunks through the vectorized sensor
        path.  Mode differences live in :meth:`_serve_frame` /
        :meth:`_serve_window`, not in the loop.
        """
        chunk: list[tuple[int, int, np.ndarray]] = []
        for item in _seeded(frames, frame_seeds, self.label):
            chunk.append(item)
            if len(chunk) >= window:
                self._flush(chunk, on_frame, stream, window)
        self._flush(chunk, on_frame, stream, window)

    def _flush(self, chunk, on_frame, stream: StreamOutcome, window: int) -> None:
        if not chunk:
            return
        if window > 1:
            self._serve_window(chunk, on_frame, stream)
        else:
            self._serve_frame(*chunk[0], on_frame, stream)
        chunk.clear()

    # -- recording ---------------------------------------------------------------

    def _record(
        self,
        stream: StreamOutcome,
        idx: int,
        result: PipelineOutcome,
        ran_stage1: bool,
        reused: bool = False,
        reason: str = "",
    ) -> None:
        stats = FrameStats.from_outcome(
            idx, result, ran_stage1=ran_stage1, reused_rois=reused, reason=reason
        )
        stream.append(stats, result if self.keep_outcomes else None)
        if self.on_stats is not None:
            self.on_stats(stats)

    # -- scalar path (window == 1): exactly the classic per-frame loop ----------

    def _serve_frame(self, idx, seed, frame, on_frame, stream: StreamOutcome) -> None:
        if on_frame is not None:
            on_frame(idx)
        pipeline = self.pipeline
        if self.reuse is not None:
            decision = self.reuse.propose()
            if decision.reuse:
                result = pipeline.run_stage2_only(
                    frame, decision.rois, frame_seed=seed
                )
                self._record(
                    stream, idx, result,
                    ran_stage1=False, reused=True, reason=decision.reason,
                )
            else:
                result = pipeline.run(frame, frame_seed=seed)
                self.reuse.observe(result.rois)
                self._record(
                    stream, idx, result, ran_stage1=True, reason=decision.reason
                )
            return
        result = pipeline.run(frame, frame_seed=seed)
        # The conventional baseline has no pooled-readout stage to count.
        self._record(
            stream, idx, result, ran_stage1=isinstance(pipeline, HiRISEPipeline)
        )

    # -- windowed path (window > 1): vectorized stage-1 over the chunk ----------

    def _exposure_buffer(self, chunk) -> np.ndarray | None:
        """The preallocated slice the window's scenes are written into.

        One ``(window, H, W, 3)`` float64 block lives for the runner's
        lifetime; partial windows (the stream's tail) borrow a leading
        slice.  A resolution change mid-stream simply reallocates.  Frames
        that are not plain arrays (e.g. pre-exposed ``PixelArray`` inputs)
        fall back to the allocating path.
        """
        first = chunk[0][2]
        if not isinstance(first, np.ndarray) or first.ndim not in (2, 3):
            return None
        shape = (self.effective_window, first.shape[0], first.shape[1], 3)
        if self._expose_buf is None or self._expose_buf.shape != shape:
            self._expose_buf = np.empty(shape, dtype=np.float64)
        return self._expose_buf[: len(chunk)]

    def _serve_window(self, chunk, on_frame, stream: StreamOutcome) -> None:
        pipeline = self.pipeline
        cfg = pipeline.config
        policy = self.reuse
        # Sensor side first: expose/pool/ADC the whole window in one
        # vectorized pass, writing scenes into the preallocated buffer.
        # Under a reuse policy this is speculative — the policy's verdicts
        # depend on detections inside this very window — but the per-frame
        # random streams are keyed by (frame_seed, readout counter), so an
        # unused pooled result perturbs nothing.  Same phase taxonomy as
        # the per-frame path; windowed sensor work counts one profiler
        # span per flush, not per frame.
        with profiled(pipeline.profiler, "expose"):
            batch = BatchSensorReadout.from_images(
                [frame for _, _, frame in chunk],
                adc_bits=cfg.adc_bits,
                noise=pipeline.noise,
                pooling=pipeline.pooling_model,
                frame_seeds=[seed for _, seed, _ in chunk],
                out=self._exposure_buffer(chunk),
            )
        with profiled(pipeline.profiler, "stage1"), profiled(
            pipeline.profiler, "read"
        ):
            stage1_results = batch.read_compressed(
                cfg.pool_k, grayscale=cfg.grayscale_stage1
            )
        for (idx, seed, _), readout, stage1 in zip(
            chunk, batch.readouts, stage1_results
        ):
            if on_frame is not None:
                on_frame(idx)
            if policy is not None:
                decision = policy.propose()
                if decision.reuse:
                    # The window's exposure is already in the buffer:
                    # read the ROI crops straight from it through a fresh
                    # readout chain (counter 0 — exactly the random
                    # stream the scalar run_stage2_only path draws).
                    result = pipeline.run_stage2_only(
                        readout.array, decision.rois, frame_seed=seed
                    )
                    self._record(
                        stream, idx, result,
                        ran_stage1=False, reused=True, reason=decision.reason,
                    )
                    continue
                ledger = TransferLedger(link=pipeline.link)
                ledger.add_stage1_frame(stage1.data_bytes)
                result = pipeline.complete_from_stage1(readout, stage1, ledger)
                policy.observe(result.rois)
                self._record(
                    stream, idx, result, ran_stage1=True, reason=decision.reason
                )
                continue
            ledger = TransferLedger(link=pipeline.link)
            ledger.add_stage1_frame(stage1.data_bytes)
            result = pipeline.complete_from_stage1(readout, stage1, ledger)
            self._record(stream, idx, result, ran_stage1=True)
