"""Temporal ROI reuse: skipping stage 1 entirely on confident frames.

:class:`repro.core.tracking.VideoHiRISEPipeline` amortizes stage 1 on a
fixed keyframe cadence.  This module makes the decision *adaptive*: stage 1
is skipped only while the scene has proven itself temporally stable — the
last two stage-1 results matched each other box-for-box above an IoU gate —
and is re-run the moment stability is lost or a reuse budget is exhausted.

The payoff is a saving the paper only hints at: on a reused frame the sensor
never converts the pooled frame and the processor never runs the stage-1
detector, so the frame costs only the descriptor feedback plus the ROI
pixels.  The risk is bounded by three knobs: the stability gate
(``stability_iou``), the consecutive-reuse budget (``max_reuse``), and the
tracker's own health check (``min_tracks``).

The box bookkeeping (matching, velocities, window inflation) is delegated
to :class:`repro.core.tracking.ROITracker`; this module adds only the
*policy* of when its predictions may replace a stage-1 run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.roi import ROI
from ..core.tracking import ROITracker


@dataclass(frozen=True)
class ReuseDecision:
    """The policy's verdict for one upcoming frame.

    Attributes:
        reuse: when True, process the frame with ``rois`` and no stage 1.
        reason: why — "stable" on reuse; "warmup", "unstable",
            "revalidate", "lost-tracks" or "no-tracks" when stage 1 must run.
        rois: predicted readout windows (non-empty only when ``reuse``).
    """

    reuse: bool
    reason: str
    rois: list[ROI] = field(default_factory=list)


def rois_stable(
    previous: Sequence[ROI], current: Sequence[ROI], iou_threshold: float
) -> bool:
    """True when two consecutive ROI sets describe the same scene.

    Stability means the same number of boxes and a one-to-one greedy
    matching in which every current box overlaps a distinct previous box
    above ``iou_threshold``.  Appearing, disappearing, or fast-moving
    objects all break the condition.
    """
    if len(previous) != len(current) or not current:
        return False
    unmatched = list(previous)
    for roi in current:
        best_i, best_iou = -1, iou_threshold
        for i, prev in enumerate(unmatched):
            iou = roi.iou(prev)
            if iou >= best_iou:
                best_i, best_iou = i, iou
        if best_i < 0:
            return False
        unmatched.pop(best_i)
    return True


@dataclass
class TemporalROIReuse:
    """IoU-gated policy deciding, per frame, whether stage 1 may be skipped.

    Protocol (driven by :class:`repro.stream.StreamRunner`): call
    :meth:`propose` before each frame; if it grants reuse, read only its
    predicted windows; otherwise run the full pipeline and feed the fresh
    stage-1 ROIs back through :meth:`observe`.  A granted proposal *must* be
    used — it advances the tracker's motion state by one frame.

    Attributes:
        tracker: box matcher/predictor shared with the keyframe machinery.
            The default inflates predicted windows by only 3% per side per
            frame — far less than the keyframe pipeline's 8% — because this
            policy only ever reuses ROIs it has just proven stable and
            revalidates within ``max_reuse`` frames, so the prediction
            horizon (and therefore the needed safety margin) is short.
        stability_iou: IoU gate two consecutive stage-1 results must clear,
            box for box, before any reuse is allowed.
        min_score: minimum stage-1 confidence; any weaker box in the latest
            result blocks reuse (low-confidence scenes re-detect every frame).
        max_reuse: consecutive reused frames before a forced revalidation.
        warmup: stage-1 results required before the first reuse (two are
            the minimum for both the stability test and velocity estimates).
        min_tracks: below this many fresh tracks, fall back to stage 1.
    """

    tracker: ROITracker = field(
        default_factory=lambda: ROITracker(inflate_per_frame=0.03)
    )
    stability_iou: float = 0.5
    min_score: float = 0.0
    max_reuse: int = 3
    warmup: int = 2
    min_tracks: int = 1
    _confirmations: int = field(default=0, init=False, repr=False)
    _streak: int = field(default=0, init=False, repr=False)
    _stable: bool = field(default=False, init=False, repr=False)
    _last_rois: list[ROI] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_reuse < 1:
            raise ValueError("max_reuse must be >= 1")
        if self.warmup < 2:
            raise ValueError("warmup must be >= 2 (stability needs two results)")

    @property
    def reuse_streak(self) -> int:
        """Consecutive frames served from reuse since the last stage-1 run."""
        return self._streak

    def reset(self) -> None:
        """Forget everything (stream boundary): tracks, stability, warmup.

        :meth:`StreamRunner.run` calls this at the start of every run, so
        one runner can process independent clips without the previous
        clip's tracks granting reuse on scenes never detected.
        """
        self.tracker.reset()
        self._confirmations = 0
        self._streak = 0
        self._stable = False
        self._last_rois = []

    def observe(self, rois: Sequence[ROI]) -> None:
        """Record a fresh stage-1 result and update the stability verdict."""
        rois = list(rois)
        confident = all((r.score is None or r.score >= self.min_score) for r in rois)
        self._stable = confident and rois_stable(
            self._last_rois, rois, self.stability_iou
        )
        self._last_rois = rois
        self._confirmations += 1
        self._streak = 0
        self.tracker.confirm(rois)

    def propose(self) -> ReuseDecision:
        """Decide the upcoming frame; advances the tracker when reusing."""
        if self._confirmations < self.warmup:
            return ReuseDecision(False, "warmup")
        if not self._stable:
            return ReuseDecision(False, "unstable")
        if self._streak >= self.max_reuse:
            return ReuseDecision(False, "revalidate")
        if not self.tracker.healthy(self.min_tracks):
            return ReuseDecision(False, "lost-tracks")
        # Only tracks confirmed at the last stage-1 run drive reuse: a
        # track whose object vanished lingers in the tracker (age-based
        # retention) but reading its window would waste stage-2 pixels and
        # polluting the stability reference with it would flag the next
        # revalidation "unstable" even when the detections never changed.
        # Before predict(), fresh tracks have aged exactly once per frame
        # of the current streak.  Reject *before* predicting so a declined
        # proposal leaves the tracker untouched.
        if not any(t.age == self._streak for t in self.tracker.tracks):
            return ReuseDecision(False, "no-tracks")
        predicted = self.tracker.predict()
        fresh_age = self._streak + 1
        rois = [
            roi
            for roi, track in zip(predicted, self.tracker.tracks)
            if track.age == fresh_age
        ]
        self._streak += 1
        # Keep the stability reference moving with the fresh tracks (their
        # un-inflated boxes), so the revalidating stage-1 run after a reuse
        # streak is compared against where the objects should be *now*, not
        # where they were before the streak.
        self._last_rois = [
            t.roi for t in self.tracker.tracks if t.age == fresh_age
        ]
        return ReuseDecision(True, "stable", rois)
