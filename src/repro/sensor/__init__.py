"""Behavioral image-sensor model (the HiRISE in-sensor compression unit).

Public surface: :class:`PixelArray`, :class:`NoiseModel`, :class:`ADCModel`,
:class:`AnalogPoolingModel`, :class:`SensorReadout` plus the grayscale and
pooling primitives.
"""

from .adc import ADC_ENERGY_45NM_8BIT, ADCModel
from .grayscale import LUMA_WEIGHTS, analog_grayscale, digital_grayscale
from .noise import NoiseModel
from .pixel_array import PixelArray
from .pooling import (
    AnalogPoolingModel,
    block_reduce_mean,
    block_reduce_mean_batch,
    digital_avg_pool,
)
from .readout import (
    BatchSensorReadout,
    ReadoutResult,
    SensorReadout,
    as_box,
    clip_box,
    merge_covered_boxes,
)
from .timing import ReadoutTimingModel

__all__ = [
    "ADC_ENERGY_45NM_8BIT",
    "ADCModel",
    "AnalogPoolingModel",
    "BatchSensorReadout",
    "LUMA_WEIGHTS",
    "NoiseModel",
    "PixelArray",
    "ReadoutResult",
    "ReadoutTimingModel",
    "SensorReadout",
    "analog_grayscale",
    "as_box",
    "block_reduce_mean",
    "block_reduce_mean_batch",
    "clip_box",
    "digital_avg_pool",
    "digital_grayscale",
    "merge_covered_boxes",
]
