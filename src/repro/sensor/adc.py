"""ADC model: quantization plus per-conversion energy.

The paper budgets sensor energy almost entirely to analog-to-digital
conversion, using the 45 nm 8-bit folding ADC of Choi et al. (ISOCC 2015):
250 mW at 2 GS/s, i.e. **125 pJ per conversion**.  That single constant
reproduces the paper's baseline energy exactly:

    2560 x 1920 x 3 conversions x 125 pJ = 1.843 mJ   (Table 3 baseline)

The converter model is otherwise a plain ideal mid-tread quantizer with
optional input-referred noise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

#: Per-conversion energy of the 45nm 8-bit ADC used by the paper (ref [3]).
ADC_ENERGY_45NM_8BIT = 125e-12

#: Guards every instance's lazily-created fallback noise stream.  A module
#: lock (instead of per-instance) keeps :class:`ADCModel` picklable;
#: contention is negligible — concurrent converters thread their own rng.
_FALLBACK_RNG_LOCK = threading.Lock()


@dataclass(frozen=True)
class ADCModel:
    """An N-bit ADC with full scale ``[0, v_ref]``.

    Attributes:
        bits: resolution; output codes span ``[0, 2**bits - 1]``.
        v_ref: full-scale reference voltage.
        energy_per_conversion: joules per sample (default: the paper's
            45 nm 8-bit ADC at 125 pJ).
        noise_lsb: sigma of input-referred noise, in LSBs.
        seed: seed for the noise stream.
    """

    bits: int = 8
    v_ref: float = 1.0
    energy_per_conversion: float = ADC_ENERGY_45NM_8BIT
    noise_lsb: float = 0.0
    seed: int = 99

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        if self.v_ref <= 0:
            raise ValueError("v_ref must be positive")
        if self.energy_per_conversion < 0:
            raise ValueError("energy_per_conversion must be non-negative")
        # Lazily-created fallback noise stream (not a dataclass field:
        # equality/hashing stay spec-based).  One generator per instance,
        # *advanced* across calls — re-seeding per call would hand every
        # conversion the identical noise realization.
        object.__setattr__(self, "_fallback_rng", None)

    def _fallback_noise(self, shape: tuple[int, ...]) -> np.ndarray:
        # Create-and-draw under one lock: concurrent rng-less converts must
        # never share a noise realization (the bug this path fixes) nor
        # interleave draws on one generator (not thread-safe).
        with _FALLBACK_RNG_LOCK:
            if self._fallback_rng is None:
                object.__setattr__(
                    self, "_fallback_rng", np.random.default_rng(self.seed)
                )
            return self._fallback_rng.standard_normal(shape)

    @property
    def levels(self) -> int:
        return 2**self.bits

    @property
    def lsb(self) -> float:
        """Volts per code step."""
        return self.v_ref / (self.levels - 1)

    # -- conversion ------------------------------------------------------------

    def convert(self, voltages: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
        """Quantize analog voltages to integer codes.

        Args:
            voltages: analog samples (any shape), clipped to ``[0, v_ref]``.
            rng: generator for input-referred noise; callers with their
                own noise bookkeeping (the readout paths thread a
                per-frame generator here) pass it explicitly.  When
                omitted, this instance's own seeded stream is used and
                *advanced*, so consecutive conversions draw distinct
                noise — deterministic given ``seed``, never repeating.

        Returns:
            ``uint16`` code array of the same shape.
        """
        v = np.asarray(voltages, dtype=np.float64)
        if self.noise_lsb > 0.0:
            if rng is None:
                noise = self._fallback_noise(v.shape)
            else:
                noise = rng.standard_normal(v.shape)
            v = v + self.noise_lsb * self.lsb * noise
        v = np.clip(v, 0.0, self.v_ref)
        codes = np.rint(v / self.lsb).astype(np.uint16)
        return codes

    def to_float(self, codes: np.ndarray) -> np.ndarray:
        """Map codes back to normalized [0, 1] values."""
        return np.asarray(codes, dtype=np.float64) / (self.levels - 1)

    def digitize(
        self, voltages: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Convert and normalize in one step (the usual readout path)."""
        return self.to_float(self.convert(voltages, rng=rng))

    # -- accounting -------------------------------------------------------------

    def energy(self, n_conversions: int) -> float:
        """Energy (J) to perform ``n_conversions`` samples."""
        if n_conversions < 0:
            raise ValueError("n_conversions must be non-negative")
        return self.energy_per_conversion * n_conversions

    def bytes_per_sample(self) -> int:
        """Bytes needed to ship one converted sample over the link."""
        return (self.bits + 7) // 8
