"""Sensor readout paths: full frame, compressed (pooled), and selective ROI.

This module is the sensor-side half of the HiRISE dataflow (paper Fig. 3):

* :meth:`SensorReadout.read_full` — the conventional baseline: convert every
  analog site and ship the whole frame.
* :meth:`SensorReadout.read_compressed` — stage 1: analog grayscale/pooling
  first, then convert only the pooled outputs.
* :meth:`SensorReadout.read_rois` — stage 2: the ROI *encoder*; given the
  bounding boxes returned by the stage-1 model it selects only those rows/
  columns of the analog array, converts them at full resolution, and ships
  the crops.

Every read returns a :class:`ReadoutResult` that accounts for conversions,
bytes on the link, and energy — the quantities Tables 1/3 and Figs. 6-8 are
built from.  Boxes are duck-typed: anything with ``x, y, w, h`` attributes
(e.g. :class:`repro.core.ROI`) or a 4-tuple works, keeping this substrate
independent of the core package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..analog.pooling_circuit import PoolingEnergyModel
from .adc import ADCModel
from .noise import NoiseModel
from .pixel_array import PixelArray
from .pooling import AnalogPoolingModel


def as_box(obj) -> tuple[int, int, int, int]:
    """Coerce an ROI-like object into an integer ``(x, y, w, h)`` tuple."""
    if hasattr(obj, "x"):
        return int(obj.x), int(obj.y), int(obj.w), int(obj.h)
    x, y, w, h = obj
    return int(x), int(y), int(w), int(h)


def clip_box(
    box: tuple[int, int, int, int], width: int, height: int
) -> tuple[int, int, int, int] | None:
    """Clip a box to the array bounds; ``None`` if nothing remains."""
    x, y, w, h = box
    x0, y0 = max(x, 0), max(y, 0)
    x1, y1 = min(x + w, width), min(y + h, height)
    if x1 <= x0 or y1 <= y0:
        return None
    return x0, y0, x1 - x0, y1 - y0


def merge_covered_boxes(
    boxes: Sequence[tuple[int, int, int, int]]
) -> list[tuple[int, int, int, int]]:
    """Drop boxes fully contained in another box (duplicate readout).

    The paper notes stage-2 transfer is "the intersection over the union of
    all the ROI boxes": overlapping regions need not be read twice.  A full
    rectangular-union readout would fragment crops, so the encoder model
    implements the practical version — containment dedup — and the cost
    model exposes the exact union area separately (see
    :func:`repro.core.roi.union_area`).
    """
    kept: list[tuple[int, int, int, int]] = []
    order = sorted(boxes, key=lambda b: b[2] * b[3], reverse=True)
    for box in order:
        x, y, w, h = box
        contained = any(
            x >= kx and y >= ky and x + w <= kx + kw and y + h <= ky + kh
            for kx, ky, kw, kh in kept
        )
        if not contained:
            kept.append(box)
    return kept


@dataclass
class ReadoutResult:
    """One readout transaction from sensor to processor.

    Attributes:
        images: digital image(s) in [0, 1]; a single array for frame reads,
            a list of crops for ROI reads.
        conversions: number of ADC conversions performed.
        data_bytes: bytes shipped over the link (conversions x sample bytes).
        adc_energy: joules spent in the ADC.
        pooling_energy: joules spent in the analog pooling circuitry
            (zero for non-pooled reads).
        boxes: for ROI reads, the clipped boxes actually read.
    """

    images: object
    conversions: int
    data_bytes: int
    adc_energy: float
    pooling_energy: float = 0.0
    boxes: list[tuple[int, int, int, int]] = field(default_factory=list)

    @property
    def total_energy(self) -> float:
        return self.adc_energy + self.pooling_energy


@dataclass
class SensorReadout:
    """Binds a pixel array to its converter and compression circuitry.

    Attributes:
        array: the exposed analog pixel array.
        adc: converter model (defaults to the paper's 8-bit / 125 pJ).
        pooling: behavioral analog pooling model.
        pooling_energy: energy model of the pooling circuit.
        frame_seed: seed for per-readout temporal noise.
    """

    array: PixelArray
    adc: ADCModel = field(default_factory=ADCModel)
    pooling: AnalogPoolingModel = field(default_factory=AnalogPoolingModel)
    pooling_energy: PoolingEnergyModel = field(default_factory=PoolingEnergyModel)
    frame_seed: int = 0

    def __post_init__(self) -> None:
        if abs(self.adc.v_ref - self.array.vdd) > 1e-12:
            raise ValueError(
                f"ADC full scale ({self.adc.v_ref} V) must match the pixel "
                f"array vdd ({self.array.vdd} V)"
            )
        self._readout_counter = 0

    # -- internals -------------------------------------------------------------

    def _rng(self) -> np.random.Generator:
        self._readout_counter += 1
        return np.random.default_rng((self.frame_seed, self._readout_counter))

    def _digitize(self, voltages: np.ndarray) -> tuple[np.ndarray, int]:
        rng = self._rng()
        noisy = voltages + self.array.noise.temporal_noise(
            voltages, self.array.vdd, rng
        )
        return self.adc.digitize(noisy, rng=rng), int(noisy.size)

    # -- readout paths ------------------------------------------------------------

    def read_full(self) -> ReadoutResult:
        """Conventional baseline: convert and ship the entire RGB frame."""
        image, n = self._digitize(self.array.voltages)
        return ReadoutResult(
            images=image,
            conversions=n,
            data_bytes=n * self.adc.bytes_per_sample(),
            adc_energy=self.adc.energy(n),
        )

    def read_compressed(self, k: int, grayscale: bool = False) -> ReadoutResult:
        """Stage 1: analog-pool (optionally grayscale-merge), then convert.

        Args:
            k: pooling size; the output is ``(H//k, W//k)`` spatial.
            grayscale: merge color channels in the analog domain as well.

        Returns:
            :class:`ReadoutResult` whose ``images`` is the pooled frame
            (2-D if grayscale, else ``(H//k, W//k, 3)``).
        """
        pooled_v = self.pooling.pool(
            self.array.voltages, k, self.array.vdd, grayscale=grayscale
        )
        return self.digitize_pooled(pooled_v)

    def digitize_pooled(self, pooled_voltages: np.ndarray) -> ReadoutResult:
        """Convert an externally-pooled frame through this readout's chain.

        This is the digitization half of :meth:`read_compressed` — it draws
        the same temporal-noise/ADC random stream and advances the readout
        counter identically, so batched pooling (see
        :class:`BatchSensorReadout`) stays bit-identical to the scalar path.
        """
        image, n = self._digitize(pooled_voltages)
        return ReadoutResult(
            images=image,
            conversions=n,
            data_bytes=n * self.adc.bytes_per_sample(),
            adc_energy=self.adc.energy(n),
            pooling_energy=self.pooling_energy.frame_energy(n),
        )

    def read_rois(
        self,
        rois: Iterable[object],
        dedup_contained: bool = True,
    ) -> ReadoutResult:
        """Stage 2: selective full-resolution readout of the given boxes.

        Args:
            rois: ROI-like objects or ``(x, y, w, h)`` tuples, in *pixel
                array* coordinates.
            dedup_contained: drop boxes fully contained in another before
                reading (the encoder's duplicate suppression).

        Returns:
            :class:`ReadoutResult` whose ``images`` is a list of RGB crops
            aligned with ``result.boxes``.
        """
        clipped: list[tuple[int, int, int, int]] = []
        for roi in rois:
            box = clip_box(as_box(roi), self.array.width, self.array.height)
            if box is not None:
                clipped.append(box)
        if dedup_contained:
            clipped = merge_covered_boxes(clipped)

        crops: list[np.ndarray] = []
        conversions = 0
        for x, y, w, h in clipped:
            crop_v = self.array.region(x, y, w, h)
            crop, n = self._digitize(crop_v)
            crops.append(crop)
            conversions += n
        return ReadoutResult(
            images=crops,
            conversions=conversions,
            data_bytes=conversions * self.adc.bytes_per_sample(),
            adc_energy=self.adc.energy(conversions),
            boxes=clipped,
        )


@dataclass
class BatchSensorReadout:
    """Vectorized stage-1 readout over a stack of same-size exposures.

    Video streams expose one frame after another onto the *same* silicon:
    the fixed-pattern maps, pooling mismatch, and ADC are shared, and only
    the scene and the temporal-noise stream differ per frame.  That makes
    the stage-1 heavy lifting — exposure scaling and k x k analog pooling
    over the full-resolution array — a single NumPy pass over an
    ``(N, H, W, 3)`` stack instead of a Python loop.

    Per-frame digitization still draws each frame's own random stream (the
    part that *must* differ per exposure), so every returned
    :class:`ReadoutResult` is bit-identical to what
    ``SensorReadout(array_i, ..., frame_seed=seed_i).read_compressed(...)``
    would produce, and the per-frame :class:`SensorReadout` objects remain
    available for the stage-2 ROI reads.

    Attributes:
        readouts: one scalar readout per frame (must share one pooling
            model and full-scale voltage; :meth:`from_images` guarantees
            it).
    """

    readouts: list[SensorReadout]
    #: The frames' (N, H, W, 3) voltage block when the readouts were built
    #: from one batch exposure; None for hand-assembled instances, which
    #: fall back to stacking (one copy) at read time.
    _stack: np.ndarray | None = field(default=None, repr=False)

    @classmethod
    def from_images(
        cls,
        frames: Sequence[np.ndarray],
        adc_bits: int = 8,
        noise: NoiseModel | None = None,
        pooling: AnalogPoolingModel | None = None,
        frame_seeds: Sequence[int] | None = None,
        vdd: float = 1.0,
        out: np.ndarray | None = None,
    ) -> "BatchSensorReadout":
        """Expose a clip in one pass and bind per-frame readout chains.

        Args:
            frames: scene images, all of one resolution.
            adc_bits: converter precision (shared).
            noise: sensor noise model (shared silicon).
            pooling: behavioral pooling model (shared circuitry).
            frame_seeds: per-frame temporal seeds; defaults to ``range(N)``.
            vdd: full-scale voltage.
            out: optional preallocated ``(N, H, W, 3)`` float64 exposure
                buffer (see :meth:`PixelArray.from_image_batch`); the
                windowed stream runner reuses one across flushes so a
                steady-state stream exposes with zero per-window
                allocation.
        """
        arrays = PixelArray.from_image_batch(
            frames, vdd=vdd, noise=noise or NoiseModel.noiseless(), out=out
        )
        if frame_seeds is None:
            frame_seeds = range(len(arrays))
        seeds = list(frame_seeds)
        if len(seeds) != len(arrays):
            raise ValueError(
                f"{len(seeds)} frame seeds for {len(arrays)} frames"
            )
        pooling = pooling or AnalogPoolingModel()
        readouts = [
            SensorReadout(
                array=array,
                adc=ADCModel(bits=adc_bits, v_ref=array.vdd),
                pooling=pooling,
                frame_seed=seed,
            )
            for array, seed in zip(arrays, seeds)
        ]
        # from_image_batch exposes every frame as a view into one block;
        # keep that block so read_compressed never has to re-stack.  A
        # caller-owned buffer may be larger than the batch (a partial
        # window), so it is passed through directly instead of recovered
        # via .base.
        if out is not None:
            stack = out if arrays else None
        else:
            stack = arrays[0].voltages.base if arrays else None
            if stack is not None and stack.shape != (
                len(arrays),
                *arrays[0].voltages.shape,
            ):
                stack = None
        return cls(readouts=readouts, _stack=stack)

    def __len__(self) -> int:
        return len(self.readouts)

    def read_compressed(self, k: int, grayscale: bool = False) -> list[ReadoutResult]:
        """Stage 1 for every frame: one vectorized pooling pass, then
        per-frame digitization on each frame's own random stream.

        Returns:
            Per-frame :class:`ReadoutResult` objects, bit-identical to the
            scalar :meth:`SensorReadout.read_compressed` loop.
        """
        if not self.readouts:
            return []
        first = self.readouts[0]
        if any(
            r.pooling is not first.pooling or r.array.vdd != first.array.vdd
            for r in self.readouts
        ):
            raise ValueError(
                "batched stage-1 needs one shared pooling model and vdd "
                "across all frames (they model the same silicon)"
            )
        stack = self._stack
        if stack is None:
            stack = np.stack([r.array.voltages for r in self.readouts])
        pooled = first.pooling.pool_batch(
            stack, k, first.array.vdd, grayscale=grayscale
        )
        return [
            readout.digitize_pooled(pooled_v)
            for readout, pooled_v in zip(self.readouts, pooled)
        ]
