"""Analog and digital grayscale conversion.

HiRISE's optional grayscale step merges the three color channels *in the
analog domain* by wiring the R, G and B pixels of a site into the averaging
circuit together — so in-sensor grayscale is the **unweighted mean** of the
three channels.  In-processor (digital) grayscale conventionally uses the
ITU-R BT.601 luma weights.  The two therefore differ slightly; the paper
handles this by retraining the stage-1 model on the grayscale it will see,
and our Table 2 bench mirrors that.
"""

from __future__ import annotations

import numpy as np

#: ITU-R BT.601 luma weights used by the digital (in-processor) path.
LUMA_WEIGHTS = np.array([0.299, 0.587, 0.114])


def analog_grayscale(voltages: np.ndarray) -> np.ndarray:
    """Unweighted channel mean — what the charge-sharing circuit computes.

    Args:
        voltages: ``(H, W, 3)`` analog voltages.

    Returns:
        ``(H, W)`` merged voltages.
    """
    if voltages.ndim != 3 or voltages.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3), got {voltages.shape}")
    return voltages.mean(axis=2)


def digital_grayscale(image: np.ndarray) -> np.ndarray:
    """BT.601 luma conversion — what an in-processor pipeline computes.

    Args:
        image: ``(H, W, 3)`` digital image (any float scale).

    Returns:
        ``(H, W)`` luma image in the same scale.
    """
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3), got {image.shape}")
    return image @ LUMA_WEIGHTS
