"""Analog k x k average pooling — the heart of the HiRISE compression unit.

The behavioral model here is calibrated against the transistor-level circuit
in :mod:`repro.analog.pooling_circuit`: the shared node of the averaging
circuit sits at ``gain * mean(inputs) + offset`` (ideally ``0.5`` and
``-VDD/2``), and the readout chain inverts that nominal affine map before
the ADC.  What cannot be inverted is captured as non-ideality:

* a per-pool-site **gain error** (resistor mismatch across the legs),
* a per-pool-site **offset error** (pull-down resistor mismatch),
* the source-follower's residual **compression nonlinearity**, second-order
  and typically < 1% of full scale for the default circuit sizing (see the
  Fig. 5 tracking fits).

Digital pooling (:func:`digital_avg_pool`) is the in-processor reference the
paper compares against in Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _check_pool_args(height: int, width: int, k: int) -> None:
    if k < 1:
        raise ValueError("pooling size k must be >= 1")
    if height < k or width < k:
        raise ValueError(f"array {width}x{height} smaller than pooling size {k}")


def block_reduce_mean(values: np.ndarray, k: int) -> np.ndarray:
    """Non-overlapping k x k block mean over the two leading axes.

    Rows/columns that do not fill a complete block are cropped, matching a
    sensor whose pooling groups are tiled from the top-left corner.

    Args:
        values: ``(H, W)`` or ``(H, W, C)`` array.
        k: block size.

    Returns:
        ``(H // k, W // k[, C])`` array of block means.
    """
    return block_reduce_mean_batch(values[None], k)[0]


def block_reduce_mean_batch(values: np.ndarray, k: int) -> np.ndarray:
    """Batched :func:`block_reduce_mean` over a leading frame axis.

    One reshape + reduction covers every frame; per output element the
    summation order matches the single-frame path exactly, so the result is
    bit-identical to calling :func:`block_reduce_mean` per frame.

    Args:
        values: ``(N, H, W)`` or ``(N, H, W, C)`` array.
        k: block size.

    Returns:
        ``(N, H // k, W // k[, C])`` array of block means.
    """
    _check_pool_args(values.shape[1], values.shape[2], k)
    n = values.shape[0]
    h = (values.shape[1] // k) * k
    w = (values.shape[2] // k) * k
    cropped = values[:, :h, :w]
    if cropped.ndim == 3:
        return cropped.reshape(n, h // k, k, w // k, k).mean(axis=(2, 4))
    c = cropped.shape[3]
    return cropped.reshape(n, h // k, k, w // k, k, c).mean(axis=(2, 4))


@dataclass(frozen=True)
class AnalogPoolingModel:
    """Behavioral model of the analog averaging circuit.

    Attributes:
        gain: nominal shared-node gain (circuit ideal: 0.5).
        offset_per_vdd: nominal offset as a fraction of VDD (ideal: -0.5).
        gain_error_sigma: per-site multiplicative mismatch (unitless sigma).
        offset_error_sigma_per_vdd: per-site additive mismatch, fraction of
            VDD.
        compression: strength of the residual source-follower nonlinearity;
            the model applies ``v - compression * v * (1 - v)`` on the
            normalized mean, a second-order bow matched to the Fig. 5 fits.
        seed: seed for the per-site mismatch maps.
    """

    gain: float = 0.5
    offset_per_vdd: float = -0.5
    gain_error_sigma: float = 0.002
    offset_error_sigma_per_vdd: float = 0.001
    compression: float = 0.01
    seed: int = 77

    @classmethod
    def ideal(cls) -> "AnalogPoolingModel":
        """Mismatch-free, perfectly linear averaging (for unit tests)."""
        return cls(
            gain_error_sigma=0.0, offset_error_sigma_per_vdd=0.0, compression=0.0
        )

    @classmethod
    def from_tracking_fit(
        cls, gain: float, offset: float, vdd: float, **kwargs
    ) -> "AnalogPoolingModel":
        """Build from a measured circuit fit (see ``repro.analog.fit_tracking``)."""
        return cls(gain=gain, offset_per_vdd=offset / vdd, **kwargs)

    # -- core op ------------------------------------------------------------------

    def pool(
        self,
        voltages: np.ndarray,
        k: int,
        vdd: float,
        grayscale: bool = False,
    ) -> np.ndarray:
        """Analog-average ``voltages`` over k x k blocks (and channels).

        The returned voltages are *calibrated*: the nominal gain/offset of
        the shared node has been inverted by the readout chain, so an ideal
        circuit returns exactly the block mean.  Mismatch and compression
        remain, because a real readout cannot know each site's deviation.

        Args:
            voltages: ``(H, W, 3)`` analog pixel voltages.
            k: pooling size (k=1 with grayscale=True merges channels only).
            vdd: full-scale voltage.
            grayscale: merge the three channels into the pool as well
                (k*k*3 pixels per output, the paper's Fig. 4 example).

        Returns:
            ``(H//k, W//k)`` if grayscale else ``(H//k, W//k, 3)``.
        """
        if voltages.ndim != 3 or voltages.shape[2] != 3:
            raise ValueError(f"expected (H, W, 3), got {voltages.shape}")
        _check_pool_args(voltages.shape[0], voltages.shape[1], k)

        if grayscale:
            merged = block_reduce_mean(voltages.mean(axis=2), k)
        else:
            merged = block_reduce_mean(voltages, k)
        return self._calibrated_shared_node(merged, vdd, site_shape=merged.shape)

    def pool_batch(
        self,
        voltages: np.ndarray,
        k: int,
        vdd: float,
        grayscale: bool = False,
    ) -> np.ndarray:
        """Analog-average a stack of frames in one vectorized pass.

        Bit-identical to calling :meth:`pool` on each frame: the block means
        reduce in the same order, and the per-site mismatch maps are drawn at
        the *per-frame* site shape (the circuit is the same silicon for every
        exposure) and broadcast across the frame axis.

        Args:
            voltages: ``(N, H, W, 3)`` analog voltages for N exposures.
            k: pooling size.
            vdd: full-scale voltage.
            grayscale: merge the three channels into the pool as well.

        Returns:
            ``(N, H//k, W//k)`` if grayscale else ``(N, H//k, W//k, 3)``.
        """
        if voltages.ndim != 4 or voltages.shape[3] != 3:
            raise ValueError(f"expected (N, H, W, 3), got {voltages.shape}")
        _check_pool_args(voltages.shape[1], voltages.shape[2], k)

        if grayscale:
            merged = block_reduce_mean_batch(voltages.mean(axis=3), k)
        else:
            merged = block_reduce_mean_batch(voltages, k)
        return self._calibrated_shared_node(merged, vdd, site_shape=merged.shape[1:])

    def _calibrated_shared_node(
        self, merged: np.ndarray, vdd: float, site_shape: tuple[int, ...]
    ) -> np.ndarray:
        """Shared-node voltage -> calibrated output, for one or many frames.

        ``site_shape`` is the physical pool-site grid: the mismatch maps are
        drawn at that shape so a batch reuses the same fixed pattern as every
        individual frame.
        """
        # Residual nonlinearity applied to the normalized mean before the
        # affine map.
        normalized = np.clip(merged / vdd, 0.0, 1.0)
        if self.compression:
            normalized = normalized - self.compression * normalized * (1.0 - normalized)
        shared = self.gain * normalized * vdd + self.offset_per_vdd * vdd

        # Per-site mismatch (fixed pattern: depends only on seed and shape).
        if self.gain_error_sigma or self.offset_error_sigma_per_vdd:
            rng = np.random.default_rng(self.seed)
            gain_map = 1.0 + self.gain_error_sigma * rng.standard_normal(site_shape)
            offset_map = (
                self.offset_error_sigma_per_vdd
                * vdd
                * rng.standard_normal(site_shape)
            )
            shared = shared * gain_map + offset_map

        # Readout calibration: invert the *nominal* affine map.
        calibrated = (shared - self.offset_per_vdd * vdd) / self.gain
        return np.clip(calibrated, 0.0, vdd)


def digital_avg_pool(image: np.ndarray, k: int) -> np.ndarray:
    """In-processor k x k average pooling of an already-digitized image.

    This is the baseline scaling path in Table 2 ("In-Proc"): the full frame
    is converted and transferred first, then scaled digitally.

    Args:
        image: ``(H, W)`` or ``(H, W, C)`` digital image.
        k: pooling size.

    Returns:
        Block-mean image, same dtype promoted to float64.
    """
    return block_reduce_mean(np.asarray(image, dtype=np.float64), k)
