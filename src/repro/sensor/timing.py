"""Readout timing: how long each HiRISE phase takes on the sensor.

The paper quantifies energy and bytes; deployments also care about frame
latency (challenge 2 mentions "latency overheads").  This model covers the
sensor-side timeline with three rates:

* **row time** — activating one pixel row onto the column lines (row
  select + settling), paid once per *row* touched, whether the row is read
  fully or only across an ROI's columns;
* **ADC throughput** — conversions per second across the column-parallel
  converter array;
* **link bandwidth** — bytes per second off the sensor.

Phases overlap poorly in simple sensors, so the model reports both the
conservative sequential latency and the conversion-limited lower bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class ReadoutTimingModel:
    """Sensor timing parameters.

    Attributes:
        row_time_s: time to select and settle one row (s).
        conversions_per_s: aggregate ADC sample rate (column-parallel).
        link_bytes_per_s: serializer bandwidth off the sensor.
        stage1_feedback_s: fixed latency of the processor->sensor ROI
            descriptor write (tiny; paid once per frame in stage 2).
    """

    row_time_s: float = 5e-6
    conversions_per_s: float = 250e6
    link_bytes_per_s: float = 100e6
    stage1_feedback_s: float = 2e-6

    def _phase(self, rows: int, conversions: int, data_bytes: int) -> float:
        if rows < 0 or conversions < 0 or data_bytes < 0:
            raise ValueError("timing inputs must be non-negative")
        return (
            rows * self.row_time_s
            + conversions / self.conversions_per_s
            + data_bytes / self.link_bytes_per_s
        )

    def full_frame_s(self, width: int, height: int, sample_bytes: int = 1) -> float:
        """Conventional baseline: read, convert and ship every site."""
        conversions = width * height * 3
        return self._phase(height, conversions, conversions * sample_bytes)

    def pooled_frame_s(
        self,
        width: int,
        height: int,
        k: int,
        grayscale: bool = False,
        sample_bytes: int = 1,
    ) -> float:
        """Stage 1: rows are activated in k-row groups (charge sharing), and
        only the pooled outputs are converted and shipped."""
        if k < 1:
            raise ValueError("k must be >= 1")
        rows = height // k
        channels = 1 if grayscale else 3
        conversions = (width // k) * (height // k) * channels
        return self._phase(rows, conversions, conversions * sample_bytes)

    def roi_readout_s(
        self,
        rois: Sequence[tuple[int, int, int, int]],
        sample_bytes: int = 1,
    ) -> float:
        """Stage 2: every ROI pays its own row activations and conversions.

        Rows shared by horizontally-adjacent ROIs are conservatively
        counted per ROI (a simple selection encoder re-activates rows per
        window).
        """
        total = self.stage1_feedback_s
        for x, y, w, h in rois:
            if w < 0 or h < 0:
                raise ValueError("ROI dimensions must be non-negative")
            conversions = w * h * 3
            total += self._phase(h, conversions, conversions * sample_bytes)
        return total

    def hirise_frame_s(
        self,
        width: int,
        height: int,
        k: int,
        rois: Sequence[tuple[int, int, int, int]],
        grayscale: bool = False,
    ) -> float:
        """Both HiRISE phases, sequential (stage 1 then feedback + ROIs)."""
        return self.pooled_frame_s(width, height, k, grayscale) + self.roi_readout_s(rois)

    def speedup_vs_baseline(
        self,
        width: int,
        height: int,
        k: int,
        rois: Sequence[tuple[int, int, int, int]],
        grayscale: bool = False,
    ) -> float:
        """Baseline latency / HiRISE latency (>1 means HiRISE is faster)."""
        hirise = self.hirise_frame_s(width, height, k, rois, grayscale)
        return self.full_frame_s(width, height) / hirise if hirise > 0 else float("inf")
