"""The analog pixel array: where photons live before any ADC conversion.

A :class:`PixelArray` holds the *analog* voltages produced by a photodiode +
source-follower front end for one exposure.  Everything HiRISE does in the
sensor — grayscale merging, k x k pooling, selective ROI readout — operates
on these voltages; nothing becomes digital until an :class:`~repro.sensor.adc.ADCModel`
converts it.

The optical model is deliberately simple and linear: a scene image with
values in [0, 1] maps to voltages in [0, vdd] with per-pixel PRNU/DSNU
fixed-pattern deviations applied once at exposure time.  Real sensors add
gamma and color filter array effects downstream of the ADC; those do not
change any of the paper's comparisons, which all happen pre-demosaic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .noise import NoiseModel


def _scene_from_image(image: np.ndarray) -> np.ndarray:
    """Validate and normalize one scene image to float64 in [0, 1].

    Shared by the single- and batch-exposure constructors so the two paths
    cannot drift (the batch path guarantees bit-identity with the scalar
    one).
    """
    if image.ndim == 2:
        image = np.repeat(image[:, :, None], 3, axis=2)
    if image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"image must be (H, W, 3) or (H, W), got {image.shape}")
    if image.dtype == np.uint8:
        return image.astype(np.float64) / 255.0
    scene = np.asarray(image, dtype=np.float64)
    if scene.size and (scene.min() < -1e-9 or scene.max() > 1.0 + 1e-9):
        raise ValueError("float image values must lie in [0, 1]")
    return scene


def _scene_into(image: np.ndarray, out: np.ndarray) -> None:
    """:func:`_scene_from_image`, but writing into a preallocated frame slot.

    ``out`` is one ``(H, W, 3)`` float64 slice of a reusable exposure-stack
    buffer.  Every operation is the same float64 arithmetic as the copying
    path (uint8 values convert to float64 before the divide, float inputs
    cast exactly), so the written values are bit-identical to what
    :func:`_scene_from_image` returns — only the allocation is gone.
    """
    if image.ndim == 2:
        image = image[:, :, None]  # broadcasts across the 3 channels below
    elif image.ndim != 3 or image.shape[2] != 3:
        raise ValueError(f"image must be (H, W, 3) or (H, W), got {image.shape}")
    if image.dtype == np.uint8:
        np.divide(image, 255.0, out=out)
        return
    np.copyto(out, image)
    if out.size and (out.min() < -1e-9 or out.max() > 1.0 + 1e-9):
        raise ValueError("float image values must lie in [0, 1]")


@dataclass
class PixelArray:
    """Analog pixel voltages for one exposure.

    Attributes:
        voltages: float64 array of shape ``(height, width, 3)`` in volts.
        vdd: full-scale voltage (a pixel seeing full-scale light sits at
            ``vdd``).
        noise: the sensor's noise model (fixed-pattern part already applied
            to ``voltages``; the temporal part is sampled at each readout).
    """

    voltages: np.ndarray
    vdd: float = 1.0
    noise: NoiseModel = field(default_factory=NoiseModel.noiseless)

    def __post_init__(self) -> None:
        if self.voltages.ndim != 3 or self.voltages.shape[2] != 3:
            raise ValueError(
                f"voltages must have shape (H, W, 3), got {self.voltages.shape}"
            )
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_image(
        cls,
        image: np.ndarray,
        vdd: float = 1.0,
        noise: NoiseModel | None = None,
    ) -> "PixelArray":
        """Expose the array to a scene image.

        Args:
            image: ``(H, W, 3)`` array; uint8 images are scaled by 1/255,
                float images must already be in [0, 1].
            vdd: full-scale voltage.
            noise: noise model; fixed-pattern (PRNU gain / DSNU offset)
                deviations are baked into the stored voltages here, because
                they are properties of the silicon, not of a readout.

        Returns:
            A new :class:`PixelArray`.
        """
        scene = _scene_from_image(image)
        noise = noise or NoiseModel.noiseless()
        voltages = scene * vdd
        if not noise.is_noiseless():
            gain, offset = noise.fixed_pattern_maps(voltages.shape)
            voltages = voltages * gain + offset
        voltages = np.clip(voltages, 0.0, vdd)
        return cls(voltages=voltages, vdd=vdd, noise=noise)

    @classmethod
    def from_image_batch(
        cls,
        images: "Sequence[np.ndarray]",
        vdd: float = 1.0,
        noise: NoiseModel | None = None,
        out: np.ndarray | None = None,
    ) -> "list[PixelArray]":
        """Expose N same-size scenes in one vectorized pass.

        The fixed-pattern maps depend only on the noise seed and the frame
        shape, so they are computed once and broadcast across the stack; all
        other operations are elementwise.  The result is bit-identical to
        calling :meth:`from_image` once per frame.

        Args:
            images: scene images, all of the same spatial size.
            vdd: full-scale voltage.
            noise: shared noise model (one sensor sees every frame).
            out: optional preallocated ``(N, H, W, 3)`` float64 exposure
                buffer (the stream runner's windowed mode reuses one across
                flushes).  The scenes are written straight into it instead
                of allocating a new stack, so the returned arrays are views
                into ``out`` — the caller owns its lifetime and must not
                overwrite it while any returned :class:`PixelArray` is in
                use.  Values are bit-identical to the allocating path.

        Returns:
            One :class:`PixelArray` per input frame.
        """
        if not len(images):
            return []
        noise = noise or NoiseModel.noiseless()
        if out is None:
            scenes = [_scene_from_image(image) for image in images]
            if len({s.shape for s in scenes}) > 1:
                raise ValueError("all frames in a batch must share one resolution")
            voltages = np.stack(scenes)
        else:
            shapes = {image.shape[:2] for image in images}
            if len(shapes) > 1:
                raise ValueError("all frames in a batch must share one resolution")
            (h, w) = next(iter(shapes))
            if (
                out.shape != (len(images), h, w, 3)
                or out.dtype != np.float64
            ):
                raise ValueError(
                    f"out: expected a ({len(images)}, {h}, {w}, 3) float64 "
                    f"buffer, got shape {out.shape} dtype {out.dtype}"
                )
            for image, slot in zip(images, out):
                _scene_into(image, slot)
            voltages = out
        voltages *= vdd
        if not noise.is_noiseless():
            gain, offset = noise.fixed_pattern_maps(voltages.shape[1:])
            voltages *= gain
            voltages += offset
        np.clip(voltages, 0.0, vdd, out=voltages)
        # Per-frame arrays are views into one (N, H, W, 3) block, so batch
        # consumers (BatchSensorReadout) can recover the stack copy-free.
        return [cls(voltages=v, vdd=vdd, noise=noise) for v in voltages]

    # -- geometry -----------------------------------------------------------------

    @property
    def height(self) -> int:
        return int(self.voltages.shape[0])

    @property
    def width(self) -> int:
        return int(self.voltages.shape[1])

    @property
    def resolution(self) -> tuple[int, int]:
        """``(width, height)`` — note the paper's ``n x m`` is width x height."""
        return (self.width, self.height)

    @property
    def n_sites(self) -> int:
        """Total analog pixel sites (3 color channels per spatial location)."""
        return self.height * self.width * 3

    # -- raw access -----------------------------------------------------------------

    def region(self, x: int, y: int, w: int, h: int) -> np.ndarray:
        """Analog voltages of an axis-aligned region (no bounds forgiveness).

        Args:
            x, y: top-left corner in pixels.
            w, h: region width and height in pixels.

        Raises:
            ValueError: if the region is empty or falls outside the array.
        """
        if w <= 0 or h <= 0:
            raise ValueError("region must have positive size")
        if x < 0 or y < 0 or x + w > self.width or y + h > self.height:
            raise ValueError(
                f"region ({x},{y},{w},{h}) outside {self.width}x{self.height} array"
            )
        return self.voltages[y : y + h, x : x + w, :]
