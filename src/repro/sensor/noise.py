"""Sensor noise models: temporal read noise, shot noise, and fixed-pattern noise.

The HiRISE accuracy experiments (paper Table 2) hinge on the claim that
*analog* in-sensor scaling is as good as digital in-processor scaling.  A
credible comparison needs the analog path to carry realistic sensor
non-idealities, so this module models:

* **read noise** — zero-mean Gaussian voltage noise added at every readout;
* **shot noise** — signal-dependent Gaussian approximation of Poisson photon
  noise (sigma grows with the square root of the signal);
* **DSNU** (dark-signal non-uniformity) — a per-pixel additive offset that is
  fixed for a given sensor instance;
* **PRNU** (photo-response non-uniformity) — a per-pixel multiplicative gain
  error, also fixed per sensor instance.

All randomness is driven by an explicit seed so experiments are exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Noise parameters, all expressed relative to the pixel full scale.

    Attributes:
        read_noise: sigma of temporal read noise, in volts.
        shot_noise_scale: scale of the sqrt-signal shot-noise term; the
            added sigma is ``shot_noise_scale * sqrt(v / vdd) * vdd``.
            Zero disables shot noise.
        dsnu: sigma of the per-pixel fixed offset, in volts.
        prnu: sigma of the per-pixel fixed relative gain error (unitless).
        seed: seed for the fixed-pattern maps and the temporal stream.
    """

    read_noise: float = 0.5e-3
    shot_noise_scale: float = 1.0e-3
    dsnu: float = 0.3e-3
    prnu: float = 0.005
    seed: int = 2024

    @classmethod
    def noiseless(cls) -> "NoiseModel":
        """An ideal sensor: every noise term disabled."""
        return cls(read_noise=0.0, shot_noise_scale=0.0, dsnu=0.0, prnu=0.0)

    def is_noiseless(self) -> bool:
        return (
            self.read_noise == 0.0
            and self.shot_noise_scale == 0.0
            and self.dsnu == 0.0
            and self.prnu == 0.0
        )

    # -- fixed-pattern maps ---------------------------------------------------

    def fixed_pattern_maps(self, shape: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        """Deterministic (gain_map, offset_map) for a sensor of ``shape``.

        The maps depend only on ``seed`` and ``shape`` so that the same
        sensor instance always exhibits the same pattern (that is what makes
        it *fixed*-pattern noise).
        """
        rng = np.random.default_rng(self.seed)
        gain = 1.0 + self.prnu * rng.standard_normal(shape)
        offset = self.dsnu * rng.standard_normal(shape)
        return gain, offset

    # -- temporal noise ---------------------------------------------------------

    def temporal_noise(
        self, voltages: np.ndarray, vdd: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample read + shot noise for one readout of ``voltages``.

        Args:
            voltages: analog pixel voltages (any shape).
            vdd: full-scale voltage, used to normalize the shot-noise term.
            rng: generator for this readout (callers advance it per frame).

        Returns:
            Noise array of the same shape (all zeros when noiseless).
        """
        total = np.zeros_like(voltages)
        if self.read_noise > 0.0:
            total = total + self.read_noise * rng.standard_normal(voltages.shape)
        if self.shot_noise_scale > 0.0 and vdd > 0.0:
            signal = np.clip(voltages / vdd, 0.0, None)
            sigma = self.shot_noise_scale * np.sqrt(signal) * vdd
            total = total + sigma * rng.standard_normal(voltages.shape)
        return total
