"""Process-wide fault-plan activation: the env hatch and the knob glue.

Two ways a plan becomes active:

* **explicitly** — every fault-aware constructor (``Engine``,
  ``ReproServer``, ``ArtifactStore``, ``share_clip``/``attach_clip``)
  takes a ``faults=`` knob; :func:`as_injector` coerces whatever the
  caller holds (a plan, a plan dict, a JSON file path, an injector) into
  one :class:`~repro.faults.FaultInjector`;
* **ambiently** — ``REPRO_FAULT_PLAN`` (inline JSON, or a path to a
  JSON file) activates a process-global injector that every ``faults=None``
  construction falls back to via :func:`default_injector`.  Spawned
  executor workers inherit the environment, so an env-activated plan
  reaches them without any plumbing.

:func:`install` / :func:`deactivate` set and clear the same global slot
in-process (tests, embedding).  With neither knob nor env set,
:func:`default_injector` returns ``None`` and every fault check is a
single attribute test — the fault layer costs nothing when dormant.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

from .injector import FaultInjector
from .plan import FaultPlan, FaultPlanError, load_fault_plan

#: Environment variable naming the ambient plan: inline JSON (starts
#: with ``{``) or a path to a plan file.
ENV_PLAN = "REPRO_FAULT_PLAN"

_lock = threading.Lock()
_installed: FaultInjector | None = None
#: Cache of the env-derived injector, keyed by the raw env value so a
#: test that monkeypatches the variable gets a fresh (re-parsed) plan.
_env_cache: tuple[str | None, FaultInjector | None] = (None, None)


def as_injector(faults) -> FaultInjector | None:
    """Coerce any accepted ``faults=`` value into an injector (or None).

    Accepts ``None``, a :class:`FaultInjector`, a :class:`FaultPlan`, a
    plan dict, a JSON file path (``str``/``Path``), or an inline-JSON
    string (starts with ``{`` — the same convention as ``REPRO_FAULT_PLAN``
    and the ``--fault-plan`` CLI flag).
    """
    if faults is None or isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    if isinstance(faults, dict):
        return FaultInjector(FaultPlan.from_dict(faults))
    if isinstance(faults, str) and faults.lstrip().startswith("{"):
        try:
            data = json.loads(faults)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"faults: invalid inline JSON: {exc}") from exc
        return FaultInjector(FaultPlan.from_dict(data))
    if isinstance(faults, (str, Path)):
        return FaultInjector(load_fault_plan(faults))
    raise TypeError(
        "faults: expected a FaultPlan, FaultInjector, plan dict, JSON "
        f"path, or None, got {faults!r}"
    )


def install(faults) -> FaultInjector | None:
    """Activate a plan process-wide (what ``faults=None`` falls back to).

    Returns the installed injector; ``install(None)`` is
    :func:`deactivate`.
    """
    global _installed
    injector = as_injector(faults)
    with _lock:
        _installed = injector
    return injector


def deactivate() -> None:
    """Clear the process-global injector (the env hatch stays live)."""
    global _installed
    with _lock:
        _installed = None


def default_injector() -> FaultInjector | None:
    """The ambient injector: installed plan, else ``REPRO_FAULT_PLAN``.

    Raises:
        FaultPlanError: the env var is set but names an unreadable or
            invalid plan — a chaos run that silently injects nothing
            would pass for resilience, so a broken plan fails loudly.
    """
    global _env_cache
    raw = os.environ.get(ENV_PLAN)
    with _lock:
        if _installed is not None:
            return _installed
        if not raw:
            return None
        cached_raw, cached = _env_cache
        if cached_raw == raw:
            return cached
        if raw.lstrip().startswith("{"):
            try:
                data = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise FaultPlanError(
                    f"{ENV_PLAN}: invalid inline JSON: {exc}"
                ) from exc
            injector = FaultInjector(FaultPlan.from_dict(data))
        else:
            injector = FaultInjector(load_fault_plan(raw))
        _env_cache = (raw, injector)
        return injector
