"""Fault plans: seeded, deterministic schedules of injected failures.

A :class:`FaultPlan` is a spec in exactly the PR-2 sense — a frozen
dataclass with an exact ``to_dict``/``from_dict`` round-trip — that says
*which* failures fire *where* and *when*.  Determinism is the whole
point: resilience can only be gated in CI if the same plan produces the
same crashes on every run, so nothing here may consult wall clocks or
unseeded randomness.  Probabilistic faults draw from a
:class:`random.Random` stream derived from ``(plan.seed, site, spec
position)``, so one seed fixes the entire injection schedule
(:meth:`FaultPlan.schedule` previews it without side effects).

Vocabulary:

* **kind** (:data:`FAULT_KINDS`) — what goes wrong: ``worker-crash``
  (the process dies hard), ``store-io-error`` (a disk read/write fails),
  ``shm-attach-gone`` (a shared-memory segment vanished), ``socket-drop``
  (the connection dies before the reply), ``reply-delay`` (the reply is
  late by ``delay_s``).
* **site** (:data:`FAULT_SITES`) — where the injector is consulted:
  ``worker.run`` (per work unit, inside a process-pool worker),
  ``store.load`` / ``store.put`` (:class:`~repro.store.ArtifactStore`),
  ``shm.attach`` / ``shm.share`` (clip transport), ``server.reply``
  (the daemon, just before a non-streaming reply / stream end),
  ``server.stream`` (the daemon, per streamed frame).
* **scope** — ``"process"`` counts hits per process (every spawned
  worker sees its own hit 0); ``"global"`` arbitrates through a marker
  file under ``fuse_dir`` so the fault fires **once across all
  processes** — this is what lets a worker-crash plan kill exactly one
  worker and let the respawned pool finish the batch.

This module is a leaf: it imports only the standard library, so every
subsystem (store, shm, executor, daemon) can depend on it without
cycles.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass

#: Named failure modes a plan may schedule, in documentation order.
FAULT_KINDS = (
    "worker-crash",
    "store-io-error",
    "shm-attach-gone",
    "socket-drop",
    "reply-delay",
)

#: Injection sites where the runtime consults the injector.
FAULT_SITES = (
    "worker.run",
    "store.load",
    "store.put",
    "shm.attach",
    "shm.share",
    "server.reply",
    "server.stream",
)

#: Hit-counting scopes (see the module docstring).
FAULT_SCOPES = ("process", "global")


class FaultPlanError(ValueError):
    """A fault plan failed validation; the message names the field."""


def _require(value, fieldname: str, types, label: str):
    if not isinstance(value, types) or isinstance(value, bool) and types is not bool:
        raise FaultPlanError(
            f"{fieldname}: expected {label}, got {type(value).__name__} "
            f"({value!r})"
        )
    return value


def _reject_unknown(data: dict, known: set, fieldname: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise FaultPlanError(
            f"{fieldname}: unknown key(s) {unknown}; known keys: {sorted(known)}"
        )


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: a kind bound to a site and a firing rule.

    Attributes:
        site: where to fire — one of :data:`FAULT_SITES`.
        kind: what to inject — one of :data:`FAULT_KINDS`.
        at: explicit 0-based hit indices at this site that always fire.
        rate: probability (0..1) that any *other* hit fires, drawn from
            the plan-seeded stream (deterministic given the seed).
        limit: cap on total fires of this spec per injector (``None`` =
            unlimited).  Counted per process; the ``"global"`` scope's
            fuse is what bounds fires *across* processes.
        delay_s: added latency for ``reply-delay`` faults (seconds).
        scope: ``"process"`` (default) or ``"global"`` (single fire
            across all processes, arbitrated via the plan's ``fuse_dir``).
    """

    site: str
    kind: str
    at: tuple = ()
    rate: float = 0.0
    limit: int | None = None
    delay_s: float = 0.0
    scope: str = "process"

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise FaultPlanError(
                f"fault.site: unknown site {self.site!r}; "
                f"known sites: {list(FAULT_SITES)}"
            )
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"fault.kind: unknown kind {self.kind!r}; "
                f"known kinds: {list(FAULT_KINDS)}"
            )
        if self.scope not in FAULT_SCOPES:
            raise FaultPlanError(
                f"fault.scope: unknown scope {self.scope!r}; "
                f"known scopes: {list(FAULT_SCOPES)}"
            )
        object.__setattr__(self, "at", tuple(self.at))
        for index in self.at:
            if not isinstance(index, int) or isinstance(index, bool) or index < 0:
                raise FaultPlanError(
                    f"fault.at: hit indices must be ints >= 0, got {index!r}"
                )
        rate = self.rate
        if isinstance(rate, int) and not isinstance(rate, bool):
            rate = float(rate)
            object.__setattr__(self, "rate", rate)
        if not isinstance(rate, float) or not 0.0 <= rate <= 1.0:
            raise FaultPlanError(
                f"fault.rate: expected a float in [0, 1], got {self.rate!r}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int)
            or isinstance(self.limit, bool)
            or self.limit < 0
        ):
            raise FaultPlanError(
                f"fault.limit: expected an int >= 0 or null, got {self.limit!r}"
            )
        delay = self.delay_s
        if isinstance(delay, int) and not isinstance(delay, bool):
            delay = float(delay)
            object.__setattr__(self, "delay_s", delay)
        if not isinstance(delay, float) or delay < 0.0:
            raise FaultPlanError(
                f"fault.delay_s: expected a float >= 0, got {self.delay_s!r}"
            )

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "kind": self.kind,
            "at": list(self.at),
            "rate": self.rate,
            "limit": self.limit,
            "delay_s": self.delay_s,
            "scope": self.scope,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        _require(data, "fault", dict, "a dict")
        _reject_unknown(
            data,
            {"site", "kind", "at", "rate", "limit", "delay_s", "scope"},
            "fault",
        )
        for fieldname in ("site", "kind"):
            if fieldname not in data:
                raise FaultPlanError(
                    f"fault.{fieldname}: required field is missing"
                )
        at = data.get("at", ())
        if not isinstance(at, (list, tuple)):
            raise FaultPlanError(
                f"fault.at: expected a list of hit indices, got {at!r}"
            )
        return cls(
            site=_require(data["site"], "fault.site", str, "str"),
            kind=_require(data["kind"], "fault.kind", str, "str"),
            at=tuple(at),
            rate=data.get("rate", 0.0),
            limit=data.get("limit"),
            delay_s=data.get("delay_s", 0.0),
            scope=_require(
                data.get("scope", "process"), "fault.scope", str, "str"
            ),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of :class:`FaultSpec` entries.

    Attributes:
        name: a human label (quoted in diagnostics, folded into the
            fingerprint).
        seed: seeds every probabilistic stream; the same seed reproduces
            the identical injection schedule.
        faults: the scheduled faults, in priority order — at most one
            fires per hit of a site, the first match winning (losers
            still consume their random draws, so adding a fault never
            perturbs another's schedule on *later* sites).
        fuse_dir: directory for ``"global"``-scope marker files.  Must be
            set when any fault uses the global scope — the fuse survives
            process boundaries, so guessing a shared default would let a
            previous run's markers silently disarm this one.
    """

    name: str = "chaos"
    seed: int = 0
    faults: tuple = ()
    fuse_dir: str | None = None

    def __post_init__(self):
        _require(self.name, "plan.name", str, "str")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise FaultPlanError(
                f"plan.seed: expected an int, got {self.seed!r}"
            )
        faults = tuple(self.faults)
        object.__setattr__(self, "faults", faults)
        for fault in faults:
            if not isinstance(fault, FaultSpec):
                raise FaultPlanError(
                    f"plan.faults: expected FaultSpec entries, got {fault!r}"
                )
        if self.fuse_dir is not None:
            _require(self.fuse_dir, "plan.fuse_dir", str, "str")
        if self.fuse_dir is None and any(f.scope == "global" for f in faults):
            raise FaultPlanError(
                "plan.fuse_dir: required when any fault has scope \"global\" "
                "(the cross-process fuse needs an explicit directory)"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
            "fuse_dir": self.fuse_dir,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        _require(data, "plan", dict, "a dict")
        _reject_unknown(data, {"name", "seed", "faults", "fuse_dir"}, "plan")
        faults = data.get("faults", ())
        if not isinstance(faults, (list, tuple)):
            raise FaultPlanError(
                f"plan.faults: expected a list, got {faults!r}"
            )
        return cls(
            name=data.get("name", "chaos"),
            seed=data.get("seed", 0),
            faults=tuple(
                fault if isinstance(fault, FaultSpec) else FaultSpec.from_dict(fault)
                for fault in faults
            ),
            fuse_dir=data.get("fuse_dir"),
        )

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON form — the plan's identity."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def schedule(self, site: str, n: int) -> list:
        """Preview the first ``n`` hits at ``site``: fired kind or None.

        A pure function of ``(plan, site, n)`` — this is the sequence a
        fresh per-process injector produces, before ``"global"``-scope
        fuse arbitration (which can only turn a fire into a skip).  Used
        by tests and the resilience bench to assert that one seed means
        one schedule.
        """
        state = SiteSchedule(self, site)
        out = []
        for _ in range(max(n, 0)):
            choice = state.next_hit()
            out.append(None if choice is None else choice[1].kind)
        return out


def _derive_seed(seed: int, site: str, position: int) -> int:
    token = f"{seed}:{site}:{position}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(token).digest()[:8], "big")


class SiteSchedule:
    """The deterministic hit-by-hit schedule of one site.

    Shared by :class:`~repro.faults.FaultInjector` (live) and
    :meth:`FaultPlan.schedule` (preview) so the two can never drift.
    Not thread-safe on its own — the injector serializes access.
    """

    def __init__(self, plan: FaultPlan, site: str):
        self.specs = [
            (position, spec)
            for position, spec in enumerate(plan.faults)
            if spec.site == site
        ]
        self._rngs = [
            random.Random(_derive_seed(plan.seed, site, position))
            for position, _ in self.specs
        ]
        self.fired = [0] * len(self.specs)
        self.hits = 0

    def next_hit(self):
        """Advance one hit; returns ``(slot, spec)`` for a fire, or None.

        Every rate-based spec consumes exactly one draw per hit whether
        or not it wins, so the choice at hit N never depends on which
        earlier spec fired.
        """
        index = self.hits
        self.hits += 1
        chosen = None
        for slot, (_, spec) in enumerate(self.specs):
            draw = self._rngs[slot].random() if spec.rate > 0.0 else 1.0
            if chosen is not None:
                continue
            if spec.limit is not None and self.fired[slot] >= spec.limit:
                continue
            if index in spec.at or draw < spec.rate:
                chosen = (slot, spec)
        if chosen is not None:
            self.fired[chosen[0]] += 1
        return chosen


def load_fault_plan(path) -> FaultPlan:
    """Read a :class:`FaultPlan` from a JSON file.

    Raises:
        FaultPlanError: unreadable file, bad JSON, or invalid plan —
            the message names the path.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise FaultPlanError(f"fault plan {str(path)!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise FaultPlanError(
            f"fault plan {str(path)!r}: invalid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise FaultPlanError(
            f"fault plan {str(path)!r}: expected a JSON object, "
            f"got {type(data).__name__}"
        )
    return FaultPlan.from_dict(data)
