"""repro.faults — deterministic, seeded fault injection.

The resilience counterpart of PR 2's spec discipline: failures are
*data*.  A :class:`FaultPlan` (frozen dataclass, exact
``to_dict``/``from_dict`` round-trip) schedules named faults —
``worker-crash``, ``store-io-error``, ``shm-attach-gone``,
``socket-drop``, ``reply-delay`` — at named injection sites; a
:class:`FaultInjector` executes that schedule deterministically (one
seed, one schedule), and every fault-aware subsystem takes a ``faults=``
knob or inherits the ambient ``REPRO_FAULT_PLAN`` plan (:mod:`.runtime`).

What consumes it:

* :class:`~repro.service.ProcessExecutor` — ``worker.run`` faults kill
  workers; the executor detects the broken pool, respawns it, and
  re-dispatches the affected work units (bit-identical: work units are
  pure specs);
* :class:`~repro.store.ArtifactStore` — ``store.load``/``store.put``
  faults exercise the quarantine-and-rebuild path;
* :mod:`repro.store.shm` — ``shm.attach``/``shm.share`` faults force the
  render-it-yourself fallback;
* :class:`~repro.server.ReproServer` — ``server.reply``/``server.stream``
  faults drop connections, delay replies, or kill a stream mid-flight;
  the retrying :class:`~repro.server.ServerClient` recovers.

``benchmarks/bench_resilience.py`` gates the whole loop: a serving load
under an active worker-crash + socket-drop plan must complete 100% of
its requests with replies byte-identical to a fault-free run.
"""

from .injector import FaultInjector, InjectedFault
from .plan import (
    FAULT_KINDS,
    FAULT_SCOPES,
    FAULT_SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    load_fault_plan,
)
from .runtime import (
    ENV_PLAN,
    as_injector,
    deactivate,
    default_injector,
    install,
)

__all__ = [
    "ENV_PLAN",
    "FAULT_KINDS",
    "FAULT_SCOPES",
    "FAULT_SITES",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFault",
    "as_injector",
    "deactivate",
    "default_injector",
    "install",
    "load_fault_plan",
]
