"""The live side of fault injection: counters, fuses, and firing.

A :class:`FaultInjector` wraps one :class:`~repro.faults.FaultPlan` and
answers the only question call sites ask: *does a fault fire at this
site, on this hit?*  ``fire(site)`` advances the site's deterministic
:class:`~repro.faults.plan.SiteSchedule` and returns the winning
:class:`~repro.faults.FaultSpec` (or ``None``); the call site applies
the effect — raising :class:`InjectedFault`, exiting the process,
closing a socket — because only it knows how that failure manifests
there.  The injector itself never sleeps, never raises, and never
touches wall clocks, so a plan with no matching faults costs one dict
lookup per hit.

``"global"``-scope faults are arbitrated through marker files under the
plan's ``fuse_dir``: the first process to reach the scheduled hit
atomically creates the marker (``open(..., "x")``) and fires; everyone
else — including the respawned worker that replays the same hit index —
skips.  That is what makes "kill exactly one worker, then recover"
expressible as data.
"""

from __future__ import annotations

import os
import threading

from .plan import FaultPlan, FaultSpec, SiteSchedule


class InjectedFault(OSError):
    """A deterministic, plan-scheduled failure.

    A subclass of :class:`OSError` so injected store/shm failures flow
    through exactly the handlers real I/O errors do — the point of
    injection is to exercise the production fallback paths, not special
    test-only ones.

    Attributes:
        site: the injection site that fired.
        kind: the fault kind.
    """

    def __init__(self, site: str, kind: str):
        super().__init__(f"injected fault: {kind} at {site}")
        self.site = site
        self.kind = kind


class FaultInjector:
    """Thread-safe runtime for one fault plan.

    One injector per process: hit counters and rate streams are
    per-process state (a spawned worker rebuilds its own injector from
    the plan dict it was shipped), while ``"global"``-scope faults
    coordinate across processes through the plan's ``fuse_dir``.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._lock = threading.Lock()
        self._sites: dict[str, SiteSchedule] = {}
        self._counts: dict[str, int] = {}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultInjector":
        return cls(FaultPlan.from_dict(data))

    def fire(self, site: str) -> FaultSpec | None:
        """Advance ``site`` by one hit; the fired spec, or ``None``.

        Firing is counted in :meth:`counters`; a ``"global"``-scope spec
        that loses its fuse race neither fires nor counts (and its
        per-spec fire tally is rolled back so a later hit may still win).
        """
        with self._lock:
            state = self._sites.get(site)
            if state is None:
                state = self._sites[site] = SiteSchedule(self.plan, site)
            choice = state.next_hit()
            if choice is None:
                return None
            slot, spec = choice
            if spec.scope == "global" and not self._claim_fuse(
                site, spec, state.hits - 1
            ):
                state.fired[slot] -= 1
                return None
            key = f"{site}:{spec.kind}"
            self._counts[key] = self._counts.get(key, 0) + 1
            return spec

    def counters(self) -> dict[str, int]:
        """Cumulative fires, keyed ``"<site>:<kind>"`` (a copy)."""
        with self._lock:
            return dict(self._counts)

    def hits(self, site: str) -> int:
        """How many times ``site`` has been consulted in this process."""
        with self._lock:
            state = self._sites.get(site)
            return 0 if state is None else state.hits

    def _claim_fuse(self, site: str, spec: FaultSpec, hit: int) -> bool:
        """Atomically claim the cross-process fuse for one scheduled fire."""
        fuse_dir = self.plan.fuse_dir
        marker = os.path.join(
            fuse_dir, f"{site}.{spec.kind}.{hit}".replace("/", "_")
        )
        try:
            os.makedirs(fuse_dir, exist_ok=True)
            with open(marker, "x", encoding="utf-8") as handle:
                handle.write(f"pid={os.getpid()}\n")
            return True
        except FileExistsError:
            return False
        except OSError:
            # An unwritable fuse dir means arbitration is impossible;
            # not firing is the safe (and deterministic-per-run) choice.
            return False

    def __repr__(self) -> str:
        return (
            f"FaultInjector(plan={self.plan.name!r}, "
            f"seed={self.plan.seed}, faults={len(self.plan.faults)})"
        )
