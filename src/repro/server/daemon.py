"""The serving daemon: one warm engine behind a socket front door.

:class:`ReproServer` is what turns the batch reproduction into a
*service*: it is built once from a :class:`~repro.service.ServiceSpec`,
owns **one** warm :class:`~repro.service.Executor` and **one** shared
:class:`~repro.service.EngineCache` for its whole lifetime, and serves
:class:`~repro.service.ScenarioSpec` requests over newline-delimited JSON
(:mod:`repro.server.protocol`) until told to stop.  Every
``Engine.run_batch`` caller used to pay cold start; a daemon pays it once.

Request discipline (the admission-controlled front door):

* **bounded queue** — at most ``queue_size`` admitted-but-unstarted
  requests; when full, submission fails *immediately* with a typed
  ``"queue-full"`` error (backpressure the client can act on) instead of
  queueing unboundedly;
* **per-request timeout** — each request carries an optional deadline
  (defaulting to the server's); expiry answers a ``"timeout"`` error and
  abandons the request (an unstarted one is cancelled outright);
* **keep-alive** — one connection serves any number of requests, one at
  a time in order; malformed/oversized frames earn an error frame and
  the connection lives on;
* **graceful drain** — ``shutdown(drain=True)`` (or SIGTERM via the CLI)
  stops admissions, finishes queued + in-flight requests, then closes.

Compute paths: non-streaming requests go through the warm executor
(``executor.execute(engine, [scenario])`` — a "process" daemon really
dispatches to warm worker processes); streaming requests run in-daemon
via :meth:`Engine.run_streaming <repro.service.Engine.run_streaming>` so
per-frame ledgers can be written to the socket as they land.  Both paths
share the one cache, so repeated requests are pure hits and bit-identical
to a fresh serial run — the serving benchmark's standing assertion.
"""

from __future__ import annotations

import itertools
import queue
import socket
import sys
import threading
import time
import traceback
from pathlib import Path
from concurrent.futures import CancelledError, Future
from concurrent.futures import TimeoutError as FutureTimeoutError

from .. import __version__
from ..faults.injector import InjectedFault
from ..faults.runtime import as_injector, default_injector
from ..service.engine import Engine
from ..service.executor import Executor, make_executor
from ..service.spec import ScenarioSpec, SpecError, coerce_service_spec, load_spec
from .protocol import (
    MAX_FRAME_BYTES,
    ErrorResponse,
    FrameChunk,
    OkResponse,
    PingRequest,
    PongResponse,
    ProtocolError,
    ResultResponse,
    RunRequest,
    ShutdownRequest,
    StatsRequest,
    StatsResponse,
    StreamEnd,
    TruncatedFrameError,
    encode_frame,
    parse_frame,
    read_frame,
)


class _Job:
    """One admitted request on its way through the queue."""

    __slots__ = ("request", "connection", "future")

    def __init__(self, request: RunRequest, connection: "_Connection"):
        self.request = request
        self.connection = connection
        self.future: Future = Future()


#: Monotone connection ids, stamped on every accepted socket so stderr
#: diagnostics can be correlated with a specific client session.
_CONNECTION_IDS = itertools.count(1)


class _Connection:
    """Per-client state: the socket, its reader, and a write lock.

    The write lock serializes whole frames: during a streamed request the
    serving worker writes :class:`FrameChunk` rows while the handler
    thread may need to write a timeout error — frames must never
    interleave mid-line.  ``abandoned`` marks a request id whose client
    stopped waiting (timeout): the worker drops further stream writes for
    it instead of corrupting the reply order.  ``cid`` is this
    connection's daemon-unique id, quoted in stderr diagnostics.
    """

    def __init__(self, sock: socket.socket):
        self.cid = next(_CONNECTION_IDS)
        self.sock = sock
        self.reader = sock.makefile("rb")
        self.wlock = threading.Lock()
        self.abandoned: set[str] = set()
        self.closed = False

    def send(self, frame) -> None:
        with self.wlock:
            if self.closed:
                return
            try:
                self.sock.sendall(encode_frame(frame))
            except OSError:
                # The client went away; reads will observe EOF shortly.
                self.closed = True

    def send_stream_frame(self, request_id: str, frame) -> bool:
        """Send a mid-stream frame unless the request was abandoned."""
        with self.wlock:
            if self.closed or request_id in self.abandoned:
                return False
            try:
                self.sock.sendall(encode_frame(frame))
                return True
            except OSError:
                self.closed = True
                return False

    def abandon(self, request_id: str) -> None:
        with self.wlock:
            self.abandoned.add(request_id)

    def close(self) -> None:
        """Stop writes and wake the handler's blocked read.

        Deliberately does NOT close ``self.reader``: a BufferedReader's
        close takes the buffer lock its blocked reading thread holds —
        closing it from another thread deadlocks.  ``shutdown`` makes the
        in-flight read return EOF; the handler thread then closes its own
        reader via :meth:`close_reader`.
        """
        with self.wlock:
            self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def close_reader(self) -> None:
        """Close the read buffer — only the handler thread may call this."""
        try:
            self.reader.close()
        except OSError:
            pass


class ReproServer:
    """A long-lived serving daemon for one system spec.

    Args:
        spec: what to serve — a :class:`~repro.service.ServiceSpec` (its
            ``executor``/``workers`` select the warm compute pool), a
            system/service dict, a JSON spec file path, or an already
            constructed :class:`~repro.service.Engine` (tests, embedding).
        host/port: bind address; port 0 picks a free port (see ``.port``
            after :meth:`start`).
        queue_size: admission bound — requests admitted but not yet
            started.  A full queue answers ``"queue-full"`` immediately.
        workers: serving concurrency (defaults to the spec's ``workers``);
            also the worker count of an executor built from the spec.
        executor: override the warm executor — a name from
            ``EXECUTOR_NAMES`` or a constructed instance (owned by the
            server either way: closed on shutdown).
        request_timeout_s: default per-request deadline; a request's own
            ``timeout_s`` wins.  ``None`` = no deadline.
        max_frame_bytes: per-line protocol ceiling.
        store: optional :class:`~repro.store.ArtifactStore` backing the
            engine cache's persistent tier — a daemon restarted against
            the same store root cold-starts into pure cache hits,
            bit-identical to the run that populated it (ignored when
            ``spec`` is an already-constructed engine, which brings its
            own cache).
        faults: a :class:`~repro.faults.FaultPlan` (or injector, dict, or
            plan path) arming the daemon's ``server.reply`` /
            ``server.stream`` injection sites and threaded into the
            engine (and from there to executor workers).  ``None``
            inherits the ambient ``REPRO_FAULT_PLAN`` plan; with neither,
            injection is entirely dormant.

    Lifecycle: :meth:`start` binds and spawns the accept loop (the
    constructor does not touch the network); :meth:`shutdown` stops it —
    gracefully draining by default.  Context-manager use does both.
    """

    def __init__(
        self,
        spec,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        queue_size: int = 16,
        workers: int | None = None,
        executor: str | Executor | None = None,
        request_timeout_s: float | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        store=None,
        faults=None,
    ):
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.faults = (
            as_injector(faults) if faults is not None else default_injector()
        )
        if isinstance(spec, Engine):
            self.engine = spec
            if self.faults is None:
                self.faults = spec.faults
            default_executor, default_workers = spec.executor, spec.workers
        else:
            if isinstance(spec, (str, Path)):
                service = load_spec(spec)
            else:
                service = coerce_service_spec(spec)
            self.engine = Engine(service.system, store=store, faults=self.faults)
            default_executor, default_workers = service.executor, service.workers
        self.workers = workers if workers is not None else default_workers
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if isinstance(executor, Executor):
            self.executor = executor
        else:
            name = executor if executor is not None else default_executor
            self.executor = make_executor(name, self.workers)
        self.host = host
        self.request_timeout_s = request_timeout_s
        self.max_frame_bytes = max_frame_bytes
        self._requested_port = port
        self._queue: "queue.Queue[_Job | None]" = queue.Queue(maxsize=queue_size)
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._connections: set[_Connection] = set()
        self._conn_lock = threading.Lock()
        self._served = 0
        self._served_lock = threading.Lock()
        # Replies in flight on handler threads: drain must not close the
        # connections until every admitted request's reply has been sent.
        self._pending = 0
        self._pending_cond = threading.Condition()
        self.port: int | None = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ReproServer":
        """Bind, then serve in background threads; returns once reachable."""
        if self._listener is not None:
            raise RuntimeError("server already started")
        self._listener = socket.create_server(
            (self.host, self._requested_port), reuse_port=False
        )
        self.port = self._listener.getsockname()[1]
        accept = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for n in range(self.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{n}", daemon=True
            )
            worker.start()
            self._threads.append(worker)
        return self

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown(drain=True)

    @property
    def address(self) -> tuple[str, int]:
        if self.port is None:
            raise RuntimeError("server not started")
        return (self.host, self.port)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the server has fully shut down (CLI foreground loop).

        Returns ``True`` once shutdown completed, ``False`` on timeout.
        """
        return self._stopped.wait(timeout)

    def shutdown(self, drain: bool = True) -> None:
        """Stop serving.

        With ``drain=True`` (graceful): stop accepting connections and
        admitting requests, let queued + in-flight requests finish and
        their replies flush, then close every connection and the warm
        executor.  With ``drain=False``: queued-but-unstarted requests are
        cancelled (their clients get a ``"shutting-down"`` error); only
        the requests already computing are awaited — nothing is killed
        mid-run.  Idempotent.
        """
        if self._stopped.is_set():
            return
        self._draining.set()
        if self._listener is not None:
            # shutdown() before close(): plain close does not wake a thread
            # blocked in accept() on Linux (the kernel keeps the listening
            # socket alive while the syscall is in flight, so the port
            # would even stay connectable).  SHUT_RDWR makes accept raise.
            for stop in (
                lambda: self._listener.shutdown(socket.SHUT_RDWR),
                self._listener.close,
            ):
                try:
                    stop()
                except OSError:
                    pass
        if not drain:
            # Flush the queue: every unstarted job is cancelled and its
            # client told why.  (Running jobs still finish below.)
            while True:
                try:
                    job = self._queue.get_nowait()
                except queue.Empty:
                    break
                if job is not None and job.future.cancel():
                    job.connection.send(
                        ErrorResponse(
                            id=job.request.id,
                            code="shutting-down",
                            message="server is shutting down; request cancelled",
                        )
                    )
                self._queue.task_done()
        # Wait for every admitted job to be taken AND completed.
        self._queue.join()
        # Wake the worker threads so they exit.
        for _ in range(self.workers):
            self._queue.put(None)
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        # A request admitted in the narrow window after join() can still be
        # sitting in the queue with no worker left to serve it: cancel it
        # so its handler unblocks with a typed error instead of hanging.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is not None:
                job.future.cancel()
            self._queue.task_done()
        # Let handler threads flush the replies of everything that ran.
        with self._pending_cond:
            self._pending_cond.wait_for(lambda: self._pending == 0, timeout=10.0)
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            connection.close()
        self.executor.close()
        self._stopped.set()

    # -- accept / handler / worker loops -----------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._draining.is_set():
            try:
                sock, _addr = listener.accept()
            except OSError:
                break  # listener closed (shutdown)
            connection = _Connection(sock)
            with self._conn_lock:
                self._connections.add(connection)
            handler = threading.Thread(
                target=self._handle_connection,
                args=(connection,),
                name="repro-serve-conn",
                daemon=True,
            )
            handler.start()

    def _handle_connection(self, connection: _Connection) -> None:
        try:
            while True:
                try:
                    data = read_frame(connection.reader, self.max_frame_bytes)
                except TruncatedFrameError:
                    break  # the peer died mid-frame: nothing to answer
                except ProtocolError as exc:
                    # Malformed JSON or an oversized (already drained) line:
                    # report and keep the connection alive.
                    connection.send(
                        ErrorResponse(id="", code=exc.code, message=str(exc))
                    )
                    continue
                except OSError:
                    break
                if data is None:
                    break  # clean EOF: client hung up
                try:
                    frame = parse_frame(data)
                except ProtocolError as exc:
                    request_id = data.get("id", "")
                    connection.send(
                        ErrorResponse(
                            id=request_id if isinstance(request_id, str) else "",
                            code=exc.code,
                            message=str(exc),
                        )
                    )
                    continue
                if isinstance(frame, PingRequest):
                    connection.send(PongResponse(id=frame.id, version=__version__))
                elif isinstance(frame, StatsRequest):
                    connection.send(self._stats_response(frame.id))
                elif isinstance(frame, ShutdownRequest):
                    connection.send(OkResponse(id=frame.id, detail="shutting down"))
                    # Shut down off-thread: this handler is one of the
                    # threads shutdown() joins.
                    threading.Thread(
                        target=self.shutdown,
                        kwargs={"drain": frame.drain},
                        name="repro-serve-shutdown",
                        daemon=True,
                    ).start()
                elif isinstance(frame, RunRequest):
                    self._handle_run(connection, frame)
                else:  # a response frame sent by a confused client
                    connection.send(
                        ErrorResponse(
                            id=getattr(frame, "id", ""),
                            code="bad-frame",
                            message=f"unexpected frame type {frame.type!r} "
                            "(server-to-client frames are not requests)",
                        )
                    )
        finally:
            with self._conn_lock:
                self._connections.discard(connection)
            connection.close()
            connection.close_reader()

    def _handle_run(self, connection: _Connection, request: RunRequest) -> None:
        """Admit, await, and answer one run request (handler thread)."""
        if self._draining.is_set():
            connection.send(
                ErrorResponse(
                    id=request.id,
                    code="shutting-down",
                    message="server is draining and accepts no new requests",
                )
            )
            return
        try:
            # Resolve component names up front so a typo'd spec fails fast
            # with a typed error instead of burning a queue slot.
            request.scenario.validate_components()
        except SpecError as exc:
            connection.send(
                ErrorResponse(id=request.id, code="bad-request", message=str(exc))
            )
            return
        with self._pending_cond:
            self._pending += 1
        try:
            self._run_and_reply(connection, request)
        finally:
            with self._pending_cond:
                self._pending -= 1
                self._pending_cond.notify_all()

    def _run_and_reply(self, connection: _Connection, request: RunRequest) -> None:
        job = _Job(request, connection)
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            connection.send(
                ErrorResponse(
                    id=request.id,
                    code="queue-full",
                    message=f"request queue is full "
                    f"({self._queue.maxsize} waiting); retry with backoff",
                )
            )
            return
        timeout = (
            request.timeout_s
            if request.timeout_s is not None
            else self.request_timeout_s
        )
        try:
            result = job.future.result(timeout=timeout)
        except FutureTimeoutError:
            # Stop the reply (and any further stream rows) first, then
            # tell the client.  cancel() succeeds iff the job never
            # started; a running one finishes server-side and still warms
            # the cache for the next caller.
            connection.abandon(request.id)
            job.future.cancel()
            connection.send(
                ErrorResponse(
                    id=request.id,
                    code="timeout",
                    message=f"request exceeded its {timeout}s deadline",
                )
            )
            return
        except CancelledError:
            connection.send(
                ErrorResponse(
                    id=request.id,
                    code="shutting-down",
                    message="server is shutting down; request cancelled",
                )
            )
            return
        except SpecError as exc:
            connection.send(
                ErrorResponse(id=request.id, code="bad-request", message=str(exc))
            )
            return
        except Exception as exc:  # noqa: BLE001 - the daemon must not die
            # The client gets a typed one-liner; the operator gets the
            # traceback on stderr, tagged with the connection id so
            # concurrent sessions stay distinguishable in the log.
            print(
                f"[repro-serve] internal error on conn {connection.cid} "
                f"request {request.id!r}: {type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            traceback.print_exc(file=sys.stderr)
            connection.send(
                ErrorResponse(
                    id=request.id, code="internal", message=f"{type(exc).__name__}: {exc}"
                )
            )
            return
        if not self._inject_reply_fault(connection, request.id):
            return
        if request.stream:
            # The worker already streamed every FrameChunk (synchronously,
            # before resolving the future); close the stream.
            outcome = result.outcome
            connection.send_stream_frame(
                request.id,
                StreamEnd(
                    id=request.id,
                    system=outcome.system,
                    n_frames=outcome.n_frames,
                    wall_time_s=outcome.wall_time_s,
                ),
            )
        else:
            response = ResultResponse(
                id=request.id, scenario=result.scenario, outcome=result.outcome
            )
            payload = encode_frame(response)
            if len(payload) > self.max_frame_bytes:
                connection.send(
                    ErrorResponse(
                        id=request.id,
                        code="oversized",
                        message=f"result frame is {len(payload)} bytes "
                        f"(limit {self.max_frame_bytes}); request fewer frames "
                        "or use streaming mode",
                    )
                )
            else:
                connection.send(response)

    # -- fault injection (chaos testing) -------------------------------------------

    def _inject_reply_fault(self, connection: _Connection, request_id: str) -> bool:
        """Fire the ``server.reply`` site; ``False`` aborts the reply.

        ``socket-drop`` closes the connection before the reply frame is
        written (the client observes a server-initiated close and, if
        retrying, reconnects and replays); ``reply-delay`` sleeps the
        spec's ``delay_s`` first; any other scheduled kind is a no-op at
        this site.
        """
        if self.faults is None:
            return True
        spec = self.faults.fire("server.reply")
        if spec is None:
            return True
        if spec.kind == "reply-delay":
            time.sleep(spec.delay_s)
            return True
        if spec.kind == "socket-drop":
            connection.close()
            return False
        return True

    def _inject_stream_fault(self, connection: _Connection) -> None:
        """Fire the ``server.stream`` site (once per outgoing frame).

        ``socket-drop`` closes the connection mid-stream; ``reply-delay``
        stalls the frame; ``worker-crash`` (or any other kind) raises
        :class:`~repro.faults.InjectedFault` — the streaming compute dies
        exactly as a real mid-run failure would, and the client gets a
        typed ``"internal"`` error frame instead of a truncated stream.
        """
        if self.faults is None:
            return
        spec = self.faults.fire("server.stream")
        if spec is None:
            return
        if spec.kind == "reply-delay":
            time.sleep(spec.delay_s)
        elif spec.kind == "socket-drop":
            connection.close()
        else:
            raise InjectedFault("server.stream", spec.kind)

    def _worker_loop(self) -> None:
        """Serving worker: pull admitted jobs, compute, resolve futures."""
        while True:
            job = self._queue.get()
            if job is None:
                self._queue.task_done()
                return
            try:
                if not job.future.set_running_or_notify_cancel():
                    continue  # cancelled while queued (timeout/shutdown)
                request = job.request
                try:
                    if request.stream:
                        # Streaming computes in-daemon: per-frame ledgers
                        # must reach the socket as the runner yields them.
                        def on_stats(stats, _req=request, _conn=job.connection):
                            self._inject_stream_fault(_conn)
                            _conn.send_stream_frame(
                                _req.id, FrameChunk(id=_req.id, stats=stats)
                            )

                        result = self.engine.run_streaming(
                            request.scenario, on_stats=on_stats
                        )
                    else:
                        # The warm executor is the compute path — for a
                        # "process" daemon this dispatches to a warm
                        # worker process; serial/thread run right here.
                        result = self.executor.execute(
                            self.engine, [request.scenario]
                        )[0]
                except BaseException as exc:  # noqa: BLE001 - reply, don't die
                    job.future.set_exception(exc)
                else:
                    job.future.set_result(result)
                    with self._served_lock:
                        self._served += 1
            finally:
                self._queue.task_done()

    # -- observability ------------------------------------------------------------

    def _stats_response(self, request_id: str) -> StatsResponse:
        stats = self.engine.cache.stats()
        sizes = self.engine.cache.sizes()
        with self._served_lock:
            served = self._served
        cache = {
            "clips": {
                "hits": stats.clips.hits,
                "misses": stats.clips.misses,
                "evictions": stats.clips.evictions,
                "disk_hits": stats.clips.disk_hits,
                "disk_misses": stats.clips.disk_misses,
                "entries": sizes["clips"]["entries"],
                "bytes": sizes["clips"]["bytes"],
            },
            "results": {
                "hits": stats.results.hits,
                "misses": stats.results.misses,
                "evictions": stats.results.evictions,
                "disk_hits": stats.results.disk_hits,
                "disk_misses": stats.results.disk_misses,
                "entries": sizes["results"]["entries"],
                "bytes": sizes["results"]["bytes"],
            },
        }
        store = getattr(self.engine.cache, "store", None)
        if store is not None:
            snap = store.snapshot()
            cache["store"] = {
                "entries": snap.entries,
                "bytes": snap.bytes,
                "hits": snap.hits,
                "misses": snap.misses,
                "writes": snap.writes,
                "evictions": snap.evictions,
                "errors": snap.errors,
            }
        # Resilience counters: executor self-healing (pool respawns and
        # re-dispatched work units) plus this process's injected-fault
        # tally.  Worker processes keep their own injectors, so worker-side
        # fires are visible here only through their *effects* (respawns).
        resilience: dict = {}
        exec_counters = getattr(self.executor, "resilience_stats", None)
        if exec_counters is not None:
            resilience["executor"] = exec_counters()
        if self.faults is not None:
            resilience["faults"] = self.faults.counters()
        return StatsResponse(
            id=request_id,
            requests_served=served,
            queue_depth=self._queue.qsize(),
            draining=self._draining.is_set(),
            cache=cache,
            resilience=resilience,
        )
