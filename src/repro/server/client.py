"""Blocking client for the serving daemon.

:class:`ServerClient` speaks the :mod:`repro.server.protocol` over one
keep-alive TCP connection and hands back the *same* types a local engine
does: :meth:`ServerClient.run` returns a
:class:`~repro.service.RunResult`, streaming mode reassembles the
:class:`~repro.stream.FrameStats` rows into a
:class:`~repro.stream.StreamOutcome` equal to the non-streaming reply.
Code written against ``Engine.run`` ports to the daemon by swapping the
callable.

Server-side failures arrive as typed ``"error"`` frames and surface as
typed exceptions — one subclass of :class:`ServerError` per actionable
:data:`~repro.server.protocol.ERROR_CODES` family — so callers can
distinguish "back off and retry" (:class:`BackpressureError`) from "your
spec is wrong" (:class:`BadRequestError`) without string matching.
"""

from __future__ import annotations

import random
import socket
import time

from ..service.engine import RunResult
from ..service.spec import ScenarioSpec
from ..stream.ledger import StreamOutcome
from .protocol import (
    MAX_FRAME_BYTES,
    ErrorResponse,
    FrameChunk,
    OkResponse,
    PingRequest,
    PongResponse,
    ProtocolError,
    ResultResponse,
    RunRequest,
    ShutdownRequest,
    StatsRequest,
    StatsResponse,
    StreamEnd,
    encode_frame,
    parse_frame,
    read_frame,
)


class ServerClosedError(ConnectionError):
    """The daemon closed the connection mid-conversation (EOF on read).

    A subclass of :class:`ConnectionError` so existing ``except
    ConnectionError`` handlers (and :func:`wait_for_server`) keep
    working, but typed so callers — and the client's own retry layer —
    can tell a *server-initiated* close apart from every other socket
    failure without string matching.
    """


class ServerError(RuntimeError):
    """A daemon answered with an ``"error"`` frame.

    Attributes:
        code: the :data:`~repro.server.protocol.ERROR_CODES` entry.
    """

    code = "internal"

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class BadRequestError(ServerError):
    """The request itself was rejected (invalid spec, malformed or
    oversized frame); retrying the same request cannot succeed."""

    code = "bad-request"


class BackpressureError(ServerError):
    """Admission control refused the request: the daemon's bounded queue
    is full.  Retry after a backoff — the request was never admitted."""

    code = "queue-full"


class RequestTimeoutError(ServerError):
    """The per-request deadline fired before the result was ready.  The
    daemon may still finish the run server-side (warming its cache)."""

    code = "timeout"


class ServerShuttingDownError(ServerError):
    """The daemon is draining and accepts no new work."""

    code = "shutting-down"


#: error code -> exception class ("internal" and anything unknown fall
#: back to plain :class:`ServerError`).
_ERROR_CLASSES = {
    "bad-frame": BadRequestError,
    "bad-request": BadRequestError,
    "oversized": BadRequestError,
    "queue-full": BackpressureError,
    "timeout": RequestTimeoutError,
    "shutting-down": ServerShuttingDownError,
}


def _raise_for(error: ErrorResponse) -> None:
    raise _ERROR_CLASSES.get(error.code, ServerError)(error.message, code=error.code)


class ServerClient:
    """A blocking, keep-alive client for one :class:`~repro.server.ReproServer`.

    One client holds one connection and runs one request at a time (the
    protocol answers in order); use one client per thread for concurrent
    load.  Usable as a context manager; :meth:`close` is idempotent.

    Args:
        host/port: the daemon's address (``server.address`` in-process).
        timeout_s: socket-level read timeout — a safety net against a
            hung daemon, distinct from the *per-request* deadline passed
            to :meth:`run`.  ``None`` blocks indefinitely.
        max_frame_bytes: per-line ceiling for incoming frames (matches
            the daemon's unless deliberately testing oversized replies).
        max_retries: extra attempts per request after a *transient*
            failure — :class:`BackpressureError` (queue full; the daemon
            never admitted the request) or a dropped connection
            (:class:`ServerClosedError` / any :class:`OSError`; the
            client reconnects transparently and re-sends).  ``0`` (the
            default) keeps the historical fail-fast behavior.  Requests
            are pure specs served by a deterministic engine, so a replay
            returns byte-identical results.  Rejections that would fail
            identically on replay (:class:`BadRequestError`,
            :class:`RequestTimeoutError`,
            :class:`ServerShuttingDownError`, protocol violations) are
            **never** retried.
        backoff_base_s / backoff_cap_s: capped exponential backoff
            between attempts: ``min(cap, base * 2**n)`` scaled by a
            deterministic jitter factor in ``[0.5, 1.0)`` drawn from
            ``retry_seed`` — two clients with different seeds desynchronize,
            one client replays the same schedule every run.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout_s: float | None = 60.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        max_retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        retry_seed: int = 0,
    ):
        if max_retries < 0:
            raise ValueError(f"max_retries: must be >= 0, got {max_retries}")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff_base_s/backoff_cap_s: must be >= 0")
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_frame_bytes = max_frame_bytes
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        #: Cumulative retry causes over this client's lifetime.
        self.retry_stats = {"backpressure": 0, "reconnect": 0}
        self._retry_rng = random.Random(retry_seed)
        self._sock: socket.socket | None = None
        self._reader = None
        self._counter = 0

    # -- connection management ---------------------------------------------------

    def connect(self) -> "ServerClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            self._reader = self._sock.makefile("rb")
        return self

    def close(self) -> None:
        sock, reader = self._sock, self._reader
        self._sock = self._reader = None
        for closer in [reader and reader.close, sock and sock.close]:
            if closer:
                try:
                    closer()
                except OSError:
                    pass

    def __enter__(self) -> "ServerClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _next_id(self) -> str:
        self._counter += 1
        return f"req-{self._counter}"

    def _send(self, frame) -> None:
        self.connect()
        self._sock.sendall(encode_frame(frame))

    def _read(self):
        """Next frame from the daemon (typed), or raise on EOF/garbage."""
        data = read_frame(self._reader, self.max_frame_bytes)
        if data is None:
            self.close()
            raise ServerClosedError("server closed the connection")
        return parse_frame(data)

    def _expect(self, request_id: str, kind):
        """Read until the reply to ``request_id``; raise typed errors."""
        while True:
            frame = self._read()
            if getattr(frame, "id", None) not in (request_id, ""):
                continue  # stale frame from an abandoned earlier request
            if isinstance(frame, ErrorResponse):
                _raise_for(frame)
            if isinstance(frame, kind):
                return frame
            raise ProtocolError(
                f"expected a {kind.type!r} frame for {request_id!r}, "
                f"got {frame.type!r}"
            )

    # -- retry discipline --------------------------------------------------------

    def _backoff_s(self, tries: int) -> float:
        """Capped exponential backoff with deterministic jitter."""
        window = min(self.backoff_cap_s, self.backoff_base_s * (2**tries))
        return window * (0.5 + 0.5 * self._retry_rng.random())

    def _with_retries(self, attempt):
        """Run ``attempt`` with up to ``max_retries`` transient retries.

        Retryable: :class:`BackpressureError` (the daemon refused
        admission — the connection is fine, just wait) and any
        :class:`OSError` including :class:`ServerClosedError` (the
        connection is dead — drop it so the next attempt reconnects via
        :meth:`_send`).  Everything else propagates on first failure.
        """
        tries = 0
        while True:
            try:
                return attempt()
            except BackpressureError:
                if tries >= self.max_retries:
                    raise
                self.retry_stats["backpressure"] += 1
            except OSError:
                self.close()
                if tries >= self.max_retries:
                    raise
                self.retry_stats["reconnect"] += 1
            time.sleep(self._backoff_s(tries))
            tries += 1

    # -- request methods ---------------------------------------------------------

    def run(self, scenario, timeout_s: float | None = None) -> RunResult:
        """Serve one scenario on the daemon; returns a full :class:`RunResult`.

        Args:
            scenario: a :class:`~repro.service.ScenarioSpec` or its dict
                form (validated before anything crosses the wire).
            timeout_s: per-request deadline (``None`` = daemon default).

        Raises:
            BackpressureError: the daemon's request queue is full (after
                ``max_retries`` backed-off re-attempts, if configured).
            RequestTimeoutError: the deadline fired.
            BadRequestError: the spec or frame was rejected.
            ServerShuttingDownError: the daemon is draining.
            ServerError: any other server-side failure.
        """
        spec = self._as_scenario(scenario)

        def attempt() -> RunResult:
            request = RunRequest(
                id=self._next_id(),
                scenario=spec,
                stream=False,
                timeout_s=timeout_s,
            )
            self._send(request)
            reply = self._expect(request.id, ResultResponse)
            return RunResult(scenario=reply.scenario, outcome=reply.outcome)

        return self._with_retries(attempt)

    def run_streaming(
        self, scenario, on_stats=None, timeout_s: float | None = None
    ) -> RunResult:
        """Serve one scenario in streaming mode.

        ``on_stats`` (if given) is called with each
        :class:`~repro.stream.FrameStats` as its :class:`FrameChunk`
        arrives — while later frames are still computing server-side.
        The returned :class:`RunResult` reassembles the streamed rows
        into a :class:`~repro.stream.StreamOutcome` equal to what
        non-streaming :meth:`run` returns for the same scenario.

        With ``max_retries > 0``, a connection dropped mid-stream
        replays the request from frame 0 — the stream is deterministic,
        but ``on_stats`` will see the already-delivered prefix again.
        """
        spec = self._as_scenario(scenario)

        def attempt() -> RunResult:
            request = RunRequest(
                id=self._next_id(),
                scenario=spec,
                stream=True,
                timeout_s=timeout_s,
            )
            self._send(request)
            frames = []
            while True:
                frame = self._read()
                if getattr(frame, "id", None) not in (request.id, ""):
                    continue
                if isinstance(frame, ErrorResponse):
                    _raise_for(frame)
                if isinstance(frame, FrameChunk):
                    frames.append(frame.stats)
                    if on_stats is not None:
                        on_stats(frame.stats)
                    continue
                if isinstance(frame, StreamEnd):
                    if frame.n_frames != len(frames):
                        raise ProtocolError(
                            f"stream for {request.id!r} ended after "
                            f"{len(frames)} frame(s) but announced "
                            f"{frame.n_frames}"
                        )
                    outcome = StreamOutcome(
                        system=frame.system,
                        frames=frames,
                        wall_time_s=frame.wall_time_s,
                    )
                    return RunResult(scenario=request.scenario, outcome=outcome)
                raise ProtocolError(
                    f"expected 'frame'/'end' for {request.id!r}, "
                    f"got {frame.type!r}"
                )

        return self._with_retries(attempt)

    def ping(self) -> str:
        """Liveness probe; returns the daemon's package version."""

        def attempt() -> str:
            request = PingRequest(id=self._next_id())
            self._send(request)
            return self._expect(request.id, PongResponse).version

        return self._with_retries(attempt)

    def stats(self) -> StatsResponse:
        """The daemon's observability snapshot (queue depth, cache tiers)."""

        def attempt() -> StatsResponse:
            request = StatsRequest(id=self._next_id())
            self._send(request)
            return self._expect(request.id, StatsResponse)

        return self._with_retries(attempt)

    def shutdown(self, drain: bool = True) -> str:
        """Ask the daemon to stop; returns its acknowledgement detail.

        With ``drain=True`` the daemon finishes queued + in-flight
        requests before exiting; ``False`` cancels queued work.
        """
        request = ShutdownRequest(id=self._next_id(), drain=drain)
        self._send(request)
        return self._expect(request.id, OkResponse).detail

    @staticmethod
    def _as_scenario(scenario) -> ScenarioSpec:
        if isinstance(scenario, ScenarioSpec):
            return scenario
        if isinstance(scenario, dict):
            return ScenarioSpec.from_dict(scenario)
        raise TypeError(
            f"scenario: expected a ScenarioSpec or dict, got {scenario!r}"
        )


def wait_for_server(
    host: str, port: int, timeout_s: float = 10.0, interval_s: float = 0.05
) -> str:
    """Block until a daemon at ``(host, port)`` answers a ping.

    Returns the daemon's version string; raises :class:`TimeoutError`
    when the deadline passes without a successful ping.  This is the
    readiness probe the CLI and CI use after launching ``repro serve``
    in the background.
    """
    deadline = time.monotonic() + timeout_s
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with ServerClient(host, port, timeout_s=timeout_s) as client:
                return client.ping()
        except (OSError, ConnectionError, ProtocolError) as exc:
            last_error = exc
            time.sleep(interval_s)
    raise TimeoutError(
        f"no serving daemon answered at {host}:{port} within {timeout_s}s"
        + (f" (last error: {last_error})" if last_error else "")
    )
