"""The serving layer: a long-lived daemon in front of one warm engine.

:mod:`repro.service` made reproduction requests *addressable*
(:class:`~repro.service.ScenarioSpec`) and batchable
(:class:`~repro.service.Engine`); this package makes them *servable*: a
:class:`ReproServer` owns one warm executor and one shared cache for its
whole lifetime and answers spec-addressed requests over a socket — the
deployment shape the HiRISE edge/host split implies, where one host-side
system serves many sensor streams.

Three modules:

* :mod:`repro.server.protocol` — the newline-delimited JSON wire format
  (typed frames, exact round-trips, typed :data:`~repro.server.protocol.ERROR_CODES`);
* :mod:`repro.server.daemon` — :class:`ReproServer`: bounded-queue
  admission control, per-request timeouts, streaming, graceful drain;
* :mod:`repro.server.client` — :class:`ServerClient`: a blocking client
  returning the same :class:`~repro.service.RunResult` a local engine
  does, raising typed :class:`ServerError` subclasses.

CLI: ``repro serve <spec>`` runs a daemon, ``repro request <spec>``
sends one scenario to it.  Benchmark: ``benchmarks/bench_serving.py``
(experiment "serving") measures sustained RPS and p50/p99 latency.
"""

from .client import (
    BackpressureError,
    BadRequestError,
    RequestTimeoutError,
    ServerClient,
    ServerClosedError,
    ServerError,
    ServerShuttingDownError,
    wait_for_server,
)
from .daemon import ReproServer
from .protocol import ERROR_CODES, MAX_FRAME_BYTES, ProtocolError

__all__ = [
    "BackpressureError",
    "BadRequestError",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ReproServer",
    "RequestTimeoutError",
    "ServerClient",
    "ServerClosedError",
    "ServerError",
    "ServerShuttingDownError",
    "wait_for_server",
]
