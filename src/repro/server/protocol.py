"""The serving wire protocol: newline-delimited JSON frames.

One TCP connection carries any number of requests (keep-alive); every
message — request, response, streamed ledger row, or error — is a single
line of JSON, a *frame*, with a ``"type"`` discriminator.  Frames follow
the spec conventions of :mod:`repro.service.spec`: frozen dataclasses,
**exact** ``to_dict``/``from_dict``/JSON round-trips, and validation
errors that name the offending field (``run.timeout_s: ...``).

Client -> server frames:

* :class:`RunRequest` (``"run"``) — serve one
  :class:`~repro.service.ScenarioSpec` against the daemon's system, whole
  result (``stream=False``) or per-frame streaming (``stream=True``);
* :class:`PingRequest` (``"ping"``) — liveness probe;
* :class:`StatsRequest` (``"stats"``) — server/cache observability;
* :class:`ShutdownRequest` (``"shutdown"``) — ask the daemon to stop
  (gracefully draining in-flight work by default).

Server -> client frames:

* :class:`ResultResponse` (``"result"``) — the whole
  :class:`~repro.stream.StreamOutcome` ledger of one request;
* :class:`FrameChunk` (``"frame"``) — one streamed
  :class:`~repro.stream.FrameStats` row;
* :class:`StreamEnd` (``"end"``) — closes a stream; carries what the
  client needs to reassemble the :class:`StreamOutcome`;
* :class:`PongResponse` (``"pong"``), :class:`StatsResponse`
  (``"server-stats"``), :class:`OkResponse` (``"ok"``);
* :class:`ErrorResponse` (``"error"``) — typed failure, one of
  :data:`ERROR_CODES`; the connection stays usable afterwards.

Wire format: UTF-8 JSON, one frame per ``\\n``-terminated line, at most
:data:`MAX_FRAME_BYTES` per line.  Oversized or malformed input raises
:class:`ProtocolError` locally / earns an ``"error"`` frame from the
daemon **without** killing the connection — :func:`read_frame` drains a
too-long line to the next newline so the stream stays in sync.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..service.spec import ScenarioSpec, SpecError
from ..stream.ledger import FrameStats

#: Hard per-line ceiling.  Generous: a 10k-frame ledger response is ~2 MB.
MAX_FRAME_BYTES = 8 * 1024 * 1024

#: Every error code a daemon can answer with.
ERROR_CODES = (
    "bad-frame",      # malformed JSON / unknown type / frame-level validation
    "bad-request",    # the scenario spec itself is invalid
    "oversized",      # frame exceeded the byte ceiling
    "queue-full",     # admission control: the bounded request queue is full
    "timeout",        # the per-request deadline fired
    "shutting-down",  # the daemon is draining and accepts no new work
    "internal",       # unexpected server-side failure
)


class ProtocolError(ValueError):
    """A frame failed to parse or validate.

    Attributes:
        code: the :data:`ERROR_CODES` entry a daemon should answer with
            ("bad-frame" for malformed frames, "bad-request" when the
            frame was well-formed but its scenario spec was not,
            "oversized" for over-limit lines).
    """

    def __init__(self, message: str, code: str = "bad-frame"):
        super().__init__(message)
        self.code = code


class TruncatedFrameError(ProtocolError):
    """The connection died mid-frame (no trailing newline before EOF).

    Unlike every other :class:`ProtocolError`, this one means the peer is
    *gone* — a daemon drops the connection instead of answering an error
    frame on it.
    """


def _require(value: object, fieldname: str, kind: type, type_name: str):
    if kind is float:
        ok = isinstance(value, (int, float)) and not isinstance(value, bool)
    elif kind is int:
        ok = isinstance(value, int) and not isinstance(value, bool)
    else:
        ok = isinstance(value, kind)
    if not ok:
        raise ProtocolError(f"{fieldname}: expected {type_name}, got {value!r}")
    return value


def _reject_unknown(data: dict, known: set[str], fieldname: str) -> None:
    unknown = sorted(set(data) - known)
    if unknown:
        raise ProtocolError(
            f"{fieldname}: unknown field(s) {unknown}; "
            f"known fields: {sorted(known)}"
        )


def _require_id(data: dict, fieldname: str) -> str:
    if "id" not in data:
        raise ProtocolError(f"{fieldname}.id: required field is missing")
    return _require(data["id"], f"{fieldname}.id", str, "str")


# -- client -> server request frames ------------------------------------------


@dataclass(frozen=True)
class RunRequest:
    """Serve one scenario against the daemon's system.

    Attributes:
        id: client-chosen correlation id, echoed on every reply frame.
        scenario: the request (``keep_outcomes`` must be off — full
            per-frame outcomes hold live images and never cross the wire).
        stream: per-frame streaming (:class:`FrameChunk` rows then a
            :class:`StreamEnd`) instead of one :class:`ResultResponse`.
        timeout_s: per-request deadline; ``None`` uses the daemon's
            default.  On expiry the daemon answers a ``"timeout"`` error
            and abandons the request.
    """

    id: str
    scenario: ScenarioSpec
    stream: bool = False
    timeout_s: float | None = None

    type = "run"

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "id": self.id,
            "scenario": self.scenario.to_dict(),
            "stream": self.stream,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunRequest":
        _reject_unknown(data, {"type", "id", "scenario", "stream", "timeout_s"}, "run")
        request_id = _require_id(data, "run")
        if "scenario" not in data:
            raise ProtocolError("run.scenario: required field is missing")
        try:
            scenario = ScenarioSpec.from_dict(data["scenario"])
        except SpecError as exc:
            raise ProtocolError(f"run.scenario: {exc}", code="bad-request") from None
        if scenario.keep_outcomes:
            raise ProtocolError(
                "run.scenario.keep_outcomes: full per-frame outcomes are not "
                "serializable; the per-frame ledger is what streams",
                code="bad-request",
            )
        stream = _require(data.get("stream", False), "run.stream", bool, "bool")
        timeout_s = data.get("timeout_s")
        if timeout_s is not None:
            timeout_s = float(
                _require(timeout_s, "run.timeout_s", float, "a number or null")
            )
            if timeout_s <= 0:
                raise ProtocolError(
                    f"run.timeout_s: must be > 0, got {timeout_s}"
                )
        return cls(id=request_id, scenario=scenario, stream=stream, timeout_s=timeout_s)


@dataclass(frozen=True)
class PingRequest:
    """Liveness probe; answered with :class:`PongResponse`."""

    id: str

    type = "ping"

    def to_dict(self) -> dict:
        return {"type": self.type, "id": self.id}

    @classmethod
    def from_dict(cls, data: dict) -> "PingRequest":
        _reject_unknown(data, {"type", "id"}, "ping")
        return cls(id=_require_id(data, "ping"))


@dataclass(frozen=True)
class StatsRequest:
    """Observability probe; answered with :class:`StatsResponse`."""

    id: str

    type = "stats"

    def to_dict(self) -> dict:
        return {"type": self.type, "id": self.id}

    @classmethod
    def from_dict(cls, data: dict) -> "StatsRequest":
        _reject_unknown(data, {"type", "id"}, "stats")
        return cls(id=_require_id(data, "stats"))


@dataclass(frozen=True)
class ShutdownRequest:
    """Stop the daemon.

    Attributes:
        drain: finish queued + in-flight requests first (the default);
            ``False`` abandons queued work with ``"shutting-down"`` errors.
    """

    id: str
    drain: bool = True

    type = "shutdown"

    def to_dict(self) -> dict:
        return {"type": self.type, "id": self.id, "drain": self.drain}

    @classmethod
    def from_dict(cls, data: dict) -> "ShutdownRequest":
        _reject_unknown(data, {"type", "id", "drain"}, "shutdown")
        request_id = _require_id(data, "shutdown")
        drain = _require(data.get("drain", True), "shutdown.drain", bool, "bool")
        return cls(id=request_id, drain=drain)


# -- server -> client response frames -----------------------------------------


@dataclass(frozen=True)
class ResultResponse:
    """One served request's whole ledger.

    Attributes:
        id: the request's correlation id.
        scenario: the scenario as the daemon parsed it (round-trip audit).
        outcome: the :class:`~repro.stream.StreamOutcome`, bit-identical
            to what a local :meth:`Engine.run <repro.service.Engine.run>`
            returns for the same specs.
    """

    id: str
    scenario: ScenarioSpec
    outcome: "object"  # StreamOutcome; typed loosely to keep imports light

    type = "result"

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "id": self.id,
            "scenario": self.scenario.to_dict(),
            "outcome": self.outcome.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResultResponse":
        from ..stream.ledger import StreamOutcome

        _reject_unknown(data, {"type", "id", "scenario", "outcome"}, "result")
        request_id = _require_id(data, "result")
        for fieldname in ("scenario", "outcome"):
            if fieldname not in data:
                raise ProtocolError(f"result.{fieldname}: required field is missing")
        try:
            scenario = ScenarioSpec.from_dict(data["scenario"])
        except SpecError as exc:
            raise ProtocolError(f"result.scenario: {exc}") from None
        try:
            outcome = StreamOutcome.from_dict(data["outcome"])
        except ValueError as exc:
            raise ProtocolError(f"result.outcome: {exc}") from None
        return cls(id=request_id, scenario=scenario, outcome=outcome)


@dataclass(frozen=True)
class FrameChunk:
    """One streamed per-frame ledger row."""

    id: str
    stats: FrameStats

    type = "frame"

    def to_dict(self) -> dict:
        return {"type": self.type, "id": self.id, "stats": self.stats.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "FrameChunk":
        _reject_unknown(data, {"type", "id", "stats"}, "frame")
        request_id = _require_id(data, "frame")
        if "stats" not in data:
            raise ProtocolError("frame.stats: required field is missing")
        try:
            stats = FrameStats.from_dict(data["stats"])
        except ValueError as exc:
            raise ProtocolError(f"frame.stats: {exc}") from None
        return cls(id=request_id, stats=stats)


@dataclass(frozen=True)
class StreamEnd:
    """Closes a streamed request.

    Attributes:
        id: the request's correlation id.
        system: ``StreamOutcome.system`` of the run ("hirise"/"conventional").
        n_frames: how many :class:`FrameChunk` rows the daemon sent — the
            client's reassembly check.
        wall_time_s: the run's measured wall-clock (server-side).
    """

    id: str
    system: str
    n_frames: int
    wall_time_s: float

    type = "end"

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "id": self.id,
            "system": self.system,
            "n_frames": self.n_frames,
            "wall_time_s": self.wall_time_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StreamEnd":
        _reject_unknown(
            data, {"type", "id", "system", "n_frames", "wall_time_s"}, "end"
        )
        request_id = _require_id(data, "end")
        for fieldname in ("system", "n_frames", "wall_time_s"):
            if fieldname not in data:
                raise ProtocolError(f"end.{fieldname}: required field is missing")
        system = _require(data["system"], "end.system", str, "str")
        n_frames = _require(data["n_frames"], "end.n_frames", int, "int")
        if n_frames < 0:
            raise ProtocolError(f"end.n_frames: must be >= 0, got {n_frames}")
        wall = _require(data["wall_time_s"], "end.wall_time_s", float, "float")
        return cls(
            id=request_id, system=system, n_frames=n_frames, wall_time_s=float(wall)
        )


@dataclass(frozen=True)
class PongResponse:
    """Liveness reply; carries the server's package version."""

    id: str
    version: str

    type = "pong"

    def to_dict(self) -> dict:
        return {"type": self.type, "id": self.id, "version": self.version}

    @classmethod
    def from_dict(cls, data: dict) -> "PongResponse":
        _reject_unknown(data, {"type", "id", "version"}, "pong")
        request_id = _require_id(data, "pong")
        if "version" not in data:
            raise ProtocolError("pong.version: required field is missing")
        version = _require(data["version"], "pong.version", str, "str")
        return cls(id=request_id, version=version)


@dataclass(frozen=True)
class StatsResponse:
    """Server observability snapshot.

    Attributes:
        id: the request's correlation id.
        requests_served: run requests completed since start.
        queue_depth: requests admitted but not yet picked up by a worker.
        draining: whether the daemon has begun shutting down.
        cache: per-tier counters —
            ``{"clips"|"results": {"hits", "misses", "evictions"}}``.
        resilience: two-level counters mirroring ``cache``'s shape —
            ``{"executor": {"respawns", "redispatched_units"},
            "faults": {"<site>:<kind>": fires}}``.  Empty when no fault
            plan is active and the executor has never self-healed;
            optional on the wire so newer clients read older daemons.
    """

    id: str
    requests_served: int
    queue_depth: int
    draining: bool
    cache: dict = field(default_factory=dict)
    resilience: dict = field(default_factory=dict)

    def __hash__(self):
        return hash((self.id, self.requests_served, self.queue_depth, self.draining))

    type = "server-stats"

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "id": self.id,
            "requests_served": self.requests_served,
            "queue_depth": self.queue_depth,
            "draining": self.draining,
            "cache": {
                tier: dict(counters) for tier, counters in self.cache.items()
            },
            "resilience": {
                group: dict(counters)
                for group, counters in self.resilience.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StatsResponse":
        known = {
            "type",
            "id",
            "requests_served",
            "queue_depth",
            "draining",
            "cache",
            "resilience",
        }
        _reject_unknown(data, known, "server-stats")
        request_id = _require_id(data, "server-stats")
        for fieldname in ("requests_served", "queue_depth", "draining", "cache"):
            if fieldname not in data:
                raise ProtocolError(
                    f"server-stats.{fieldname}: required field is missing"
                )
        served = _require(
            data["requests_served"], "server-stats.requests_served", int, "int"
        )
        depth = _require(data["queue_depth"], "server-stats.queue_depth", int, "int")
        draining = _require(data["draining"], "server-stats.draining", bool, "bool")
        cache = _require(data["cache"], "server-stats.cache", dict, "dict")
        for tier, counters in cache.items():
            _require(counters, f"server-stats.cache.{tier}", dict, "dict")
            for counter, value in counters.items():
                _require(
                    value, f"server-stats.cache.{tier}.{counter}", int, "int"
                )
        # Optional: absent in frames from pre-resilience daemons.
        resilience = _require(
            data.get("resilience", {}), "server-stats.resilience", dict, "dict"
        )
        for group, counters in resilience.items():
            _require(counters, f"server-stats.resilience.{group}", dict, "dict")
            for counter, value in counters.items():
                _require(
                    value, f"server-stats.resilience.{group}.{counter}", int, "int"
                )
        return cls(
            id=request_id,
            requests_served=served,
            queue_depth=depth,
            draining=draining,
            cache={tier: dict(counters) for tier, counters in cache.items()},
            resilience={
                group: dict(counters) for group, counters in resilience.items()
            },
        )


@dataclass(frozen=True)
class OkResponse:
    """Generic acknowledgement (shutdown accepted, ...)."""

    id: str
    detail: str = ""

    type = "ok"

    def to_dict(self) -> dict:
        return {"type": self.type, "id": self.id, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: dict) -> "OkResponse":
        _reject_unknown(data, {"type", "id", "detail"}, "ok")
        request_id = _require_id(data, "ok")
        detail = _require(data.get("detail", ""), "ok.detail", str, "str")
        return cls(id=request_id, detail=detail)


@dataclass(frozen=True)
class ErrorResponse:
    """A typed failure; the connection remains usable.

    Attributes:
        id: the offending request's id ("" when it never parsed far
            enough to have one).
        code: one of :data:`ERROR_CODES`.
        message: human-readable detail.
    """

    id: str
    code: str
    message: str = ""

    type = "error"

    def __post_init__(self) -> None:
        if self.code not in ERROR_CODES:
            raise ProtocolError(
                f"error.code: unknown code {self.code!r}; "
                f"known codes: {list(ERROR_CODES)}"
            )

    def to_dict(self) -> dict:
        return {
            "type": self.type,
            "id": self.id,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ErrorResponse":
        _reject_unknown(data, {"type", "id", "code", "message"}, "error")
        request_id = _require_id(data, "error")
        if "code" not in data:
            raise ProtocolError("error.code: required field is missing")
        code = _require(data["code"], "error.code", str, "str")
        message = _require(data.get("message", ""), "error.message", str, "str")
        return cls(id=request_id, code=code, message=message)


#: Discriminator -> frame class, the :func:`parse_frame` dispatch table.
FRAME_TYPES = {
    cls.type: cls
    for cls in (
        RunRequest,
        PingRequest,
        StatsRequest,
        ShutdownRequest,
        ResultResponse,
        FrameChunk,
        StreamEnd,
        PongResponse,
        StatsResponse,
        OkResponse,
        ErrorResponse,
    )
}


def parse_frame(data: dict):
    """Dispatch a decoded frame dict to its typed form.

    Raises:
        ProtocolError: missing/unknown ``type``, or the frame's own
            validation failed (the message names the field).
    """
    if not isinstance(data, dict):
        raise ProtocolError(f"frame: expected a JSON object, got {data!r}")
    frame_type = data.get("type")
    if frame_type is None:
        raise ProtocolError("frame.type: required field is missing")
    if frame_type not in FRAME_TYPES:
        raise ProtocolError(
            f"frame.type: unknown frame type {frame_type!r}; "
            f"known types: {sorted(FRAME_TYPES)}"
        )
    return FRAME_TYPES[frame_type].from_dict(data)


# -- wire IO ------------------------------------------------------------------


def encode_frame(frame) -> bytes:
    """One frame as its wire line: compact JSON + ``\\n``.

    Accepts a typed frame (anything with ``to_dict``) or a plain dict.
    JSON string escaping guarantees the payload itself contains no raw
    newline, so frame boundaries are unambiguous.
    """
    payload = frame.to_dict() if hasattr(frame, "to_dict") else frame
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def read_frame(reader, max_bytes: int = MAX_FRAME_BYTES):
    """Read one frame line from a binary file-like reader.

    Returns:
        The decoded (but not yet type-dispatched) dict, or ``None`` on a
        clean EOF between frames.

    Raises:
        ProtocolError: the line was not valid UTF-8 JSON, not an object,
            or the connection died mid-frame (truncated line).  With
            ``code="oversized"``: the line exceeded ``max_bytes`` — the
            rest of the line is *drained* first, so the caller can answer
            an error frame and keep reading subsequent frames.
    """
    line = reader.readline(max_bytes + 1)
    if not line:
        return None
    if len(line) > max_bytes:
        # Too long — consume the remainder (bounded reads) to resync on
        # the next newline, then report.  The connection stays usable.
        while not line.endswith(b"\n"):
            line = reader.readline(64 * 1024)
            if not line:
                break
        raise ProtocolError(
            f"frame exceeds the {max_bytes}-byte limit", code="oversized"
        )
    if not line.endswith(b"\n"):
        raise TruncatedFrameError("connection closed mid-frame (truncated line)")
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ProtocolError(f"frame: expected a JSON object, got {data!r}")
    return data
