"""The repo's invariants as executable rules.

Each rule encodes one contract the reproduction depends on — documented
in ``docs/architecture.md`` ("Invariants & lint") and until now guarded
only by prose and whichever tests happened to exercise it.  Scoped
rules (wall-clock, lock discipline, matmul, work units) consult the
:class:`~repro.lint.config.LintConfig` so tests can retarget them at
fixture files; the rest apply to every linted module.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from .engine import LintRule, ModuleContext, register_rule
from .findings import Finding

# -- shared helpers ----------------------------------------------------------------


def _dataclass_decorator(
    ctx: ModuleContext, node: ast.ClassDef
) -> tuple[bool, bool]:
    """(is_dataclass, is_frozen) from the class's decorator list."""
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = ctx.resolve(target) or ""
        if resolved.split(".")[-1] != "dataclass":
            continue
        frozen = isinstance(decorator, ast.Call) and any(
            keyword.arg == "frozen"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is True
            for keyword in decorator.keywords
        )
        return True, frozen
    return False, False


def _field_names(node: ast.ClassDef) -> list[str]:
    """Annotated dataclass fields (public, non-ClassVar), in order."""
    names = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign):
            continue
        if not isinstance(stmt.target, ast.Name):
            continue
        if "ClassVar" in ast.unparse(stmt.annotation):
            continue
        if stmt.target.id.startswith("_"):
            continue
        names.append(stmt.target.id)
    return names


def _walk_own_code(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested defs/lambdas."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


# -- determinism -------------------------------------------------------------------


@register_rule
class NoWallclock(LintRule):
    """Report/ledger/spec payload modules must not reach wall-clock."""

    rule_id = "no-wallclock"
    description = (
        "payload modules (reports, ledgers, specs, protocol frames) must "
        "be wall-clock-free so emitted artifacts are byte-stable"
    )
    hint = (
        "keep timings in run-metadata types excluded from to_dict(), or "
        "pass timestamps in from the caller"
    )

    _CALLS = {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.matches(ctx.config.payload_modules):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    head = alias.name.split(".")[0]
                    if head in ("time", "datetime"):
                        yield ctx.finding(
                            self,
                            node,
                            f"payload module imports wall-clock module "
                            f"'{alias.name}'",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in (
                    "time",
                    "datetime",
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"payload module imports from wall-clock module "
                        f"'{node.module}'",
                    )
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func)
                if resolved in self._CALLS:
                    yield ctx.finding(
                        self,
                        node,
                        f"wall-clock call '{resolved}' in a payload module",
                    )


@register_rule
class SeededRng(LintRule):
    """Every RNG must be explicitly seeded; no legacy global state."""

    rule_id = "seeded-rng"
    description = (
        "no argument-less np.random.default_rng() and no legacy "
        "np.random.* global-state calls — bit-identity needs every "
        "stream seeded"
    )
    hint = (
        "pass an explicit seed: np.random.default_rng(seed) derived "
        "from the spec (e.g. per-frame seeds)"
    )

    _LEGACY = {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "standard_normal",
        "bytes",
        "get_state",
        "set_state",
    }

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func) or ""
                if resolved == "numpy.random.default_rng" and not (
                    node.args or node.keywords
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "argument-less default_rng() seeds from OS entropy",
                    )
                elif (
                    resolved.startswith("numpy.random.")
                    and resolved.split(".")[-1] in self._LEGACY
                ):
                    yield ctx.finding(
                        self,
                        node,
                        f"legacy global-state RNG call '{resolved}'",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module != "numpy.random":
                    continue
                for alias in node.names:
                    if alias.name in self._LEGACY:
                        yield ctx.finding(
                            self,
                            node,
                            f"imports legacy global-state RNG "
                            f"'numpy.random.{alias.name}'",
                        )


# -- spawn safety ------------------------------------------------------------------


@register_rule
class ImportTimeRegistration(LintRule):
    """``@register_*`` must run at import time for spawn workers."""

    rule_id = "import-time-registration"
    description = (
        "component registration decorators must sit at module top level "
        "— spawn workers re-import modules and silently lose components "
        "registered inside functions"
    )
    hint = (
        "move the decorated def/class to module scope (or register "
        "explicitly at import time)"
    )

    def _is_register(self, ctx: ModuleContext, decorator: ast.AST) -> bool:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        resolved = ctx.resolve(target) or ""
        last = resolved.split(".")[-1]
        return last.startswith("register_") or (
            last == "register" and "." in resolved
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            if not any(
                self._is_register(ctx, decorator)
                for decorator in node.decorator_list
            ):
                continue
            if not isinstance(ctx.parent(node), ast.Module):
                yield ctx.finding(
                    self,
                    node,
                    f"'{node.name}' registers a component below module "
                    f"top level",
                )


@register_rule
class PicklableWorkunits(LintRule):
    """Work-unit dataclasses must survive a pickle round-trip."""

    rule_id = "picklable-workunits"
    description = (
        "dataclasses crossing process boundaries may not carry lambdas, "
        "locks, sockets, threads, or file handles"
    )
    hint = (
        "ship plain data (names, specs, shm handles) and rebuild live "
        "resources on the worker side"
    )

    _FORBIDDEN = re.compile(
        r"\b(Lock|RLock|Condition|Semaphore|BoundedSemaphore|Event|"
        r"Barrier|Thread|socket|SharedMemory|TextIO|BinaryIO|IO|"
        r"Future|Queue|Callable|Lambda)\b"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.matches(ctx.config.workunit_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            is_dataclass, _ = _dataclass_decorator(ctx, node)
            if not is_dataclass:
                continue
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign):
                    continue
                annotation = ast.unparse(stmt.annotation)
                match = self._FORBIDDEN.search(annotation)
                if match:
                    yield ctx.finding(
                        self,
                        stmt,
                        f"work-unit field annotated '{annotation}' is not "
                        f"spawn-picklable ({match.group(1)})",
                    )
                if isinstance(stmt.value, ast.Lambda):
                    yield ctx.finding(
                        self,
                        stmt,
                        "work-unit field defaults to a lambda (pickle "
                        "cannot serialise it)",
                    )


# -- spec contracts ----------------------------------------------------------------


@register_rule
class SpecRoundtrip(LintRule):
    """Frozen dataclasses with ``to_dict`` must round-trip exactly."""

    rule_id = "spec-roundtrip"
    description = (
        "a frozen dataclass defining to_dict must define from_dict, and "
        "to_dict's written keys must cover every field — specs are "
        "cache keys and must round-trip exactly"
    )
    hint = (
        "add from_dict (validating unknown keys), or serialise via "
        "dataclasses.fields()/asdict() so coverage is structural"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            is_dataclass, frozen = _dataclass_decorator(ctx, node)
            if not (is_dataclass and frozen):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            to_dict = methods.get("to_dict")
            if to_dict is None:
                continue
            if "from_dict" not in methods:
                yield ctx.finding(
                    self,
                    to_dict,
                    f"'{node.name}' defines to_dict but no from_dict",
                )
            # Structural serialisation (fields()/asdict()) covers every
            # field by construction; otherwise every field name must
            # appear as a string key somewhere in the body.
            structural = any(
                isinstance(sub, ast.Call)
                and (ctx.resolve(sub.func) or "").split(".")[-1]
                in ("fields", "asdict")
                for sub in ast.walk(to_dict)
            )
            if structural:
                continue
            written = {
                sub.value
                for sub in ast.walk(to_dict)
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
            }
            missing = [
                name for name in _field_names(node) if name not in written
            ]
            if missing:
                yield ctx.finding(
                    self,
                    to_dict,
                    f"'{node.name}.to_dict' never writes field(s): "
                    f"{', '.join(missing)}",
                )


# -- concurrency -------------------------------------------------------------------


@register_rule
class LockDiscipline(LintRule):
    """Cache/store tier state mutates only under the tier lock."""

    rule_id = "lock-discipline"
    description = (
        "mutations of the cache/store index state must sit lexically "
        "inside 'with self._lock' (or in __init__ / a *_locked helper "
        "whose caller holds the lock)"
    )
    hint = (
        "wrap the mutation in 'with self._lock:', or move it into a "
        "*_locked method and take the lock at the call site"
    )

    _MUTATORS = {
        "append",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }

    @staticmethod
    def _tracked_attr(node: ast.AST, attrs: tuple[str, ...]) -> str | None:
        """The tracked ``self.<attr>`` at the root of a target, if any."""
        current = node
        while isinstance(current, ast.Subscript):
            current = current.value
        if (
            isinstance(current, ast.Attribute)
            and isinstance(current.value, ast.Name)
            and current.value.id == "self"
            and current.attr in attrs
        ):
            return current.attr
        return None

    def _exempt(self, ctx: ModuleContext, node: ast.AST, lock_attr: str) -> bool:
        function = ctx.enclosing_function(node)
        if function is not None and (
            function.name == "__init__" or function.name.endswith("_locked")
        ):
            return True
        return ctx.in_with_lock(node, lock_attr)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scope = ctx.config.lock_scope_for(ctx.path)
        if scope is None:
            return
        for node in ast.walk(ctx.tree):
            mutated: str | None = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    mutated = self._tracked_attr(target, scope.attrs)
                    if mutated:
                        break
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    mutated = self._tracked_attr(target, scope.attrs)
                    if mutated:
                        break
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in self._MUTATORS:
                    mutated = self._tracked_attr(node.func.value, scope.attrs)
            if mutated and not self._exempt(ctx, node, scope.lock_attr):
                yield ctx.finding(
                    self,
                    node,
                    f"mutation of self.{mutated} outside "
                    f"'with self.{scope.lock_attr}'",
                )


# -- bit-identity ------------------------------------------------------------------


@register_rule
class NoBareMatmul(LintRule):
    """Inference paths use fixed-order einsum, never ``@``/dot."""

    rule_id = "no-bare-matmul-in-inference"
    description = (
        "no '@' / np.matmul / np.dot on inference paths in the ML "
        "kernels — BLAS reassociates by shape, breaking bit-identity "
        "across batch sizes; fixed-order einsum only (the PR-4 gotcha)"
    )
    hint = (
        "rewrite as np.einsum with an explicit subscript order (training "
        "backward passes are exempt)"
    )

    _EXEMPT_FUNCTIONS = ("backward",)

    def _in_training_branch(self, ctx: ModuleContext, node: ast.AST) -> bool:
        """True when ``node`` sits in the body of ``if training:``."""
        for ancestor in ctx.ancestors(node):
            if not isinstance(ancestor, ast.If):
                continue
            test = ancestor.test
            dotted = ctx.dotted_name(test) or ""
            if dotted not in ("training", "self.training"):
                continue
            body_start = ancestor.body[0].lineno
            body_end = max(
                getattr(stmt, "end_lineno", stmt.lineno)
                for stmt in ancestor.body
            )
            if body_start <= node.lineno <= body_end:
                return True
        return False

    def _exempt(self, ctx: ModuleContext, node: ast.AST) -> bool:
        function = ctx.enclosing_function(node)
        if function is not None and any(
            marker in function.name for marker in self._EXEMPT_FUNCTIONS
        ):
            return True
        return self._in_training_branch(ctx, node)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.matches(ctx.config.matmul_modules):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.MatMult):
                if not self._exempt(ctx, node):
                    yield ctx.finding(
                        self,
                        node,
                        "bare '@' matmul on an inference path",
                    )
            elif isinstance(node, ast.Call):
                resolved = ctx.resolve(node.func) or ""
                if resolved in ("numpy.matmul", "numpy.dot"):
                    if not self._exempt(ctx, node):
                        yield ctx.finding(
                            self,
                            node,
                            f"'{resolved}' on an inference path",
                        )


# -- error accounting --------------------------------------------------------------


@register_rule
class SilentExcept(LintRule):
    """Broad excepts carry a written justification or re-raise."""

    rule_id = "silent-except"
    description = (
        "a bare/broad except must either re-raise or carry the "
        "'# noqa: BLE001 - <reason>' justification on the except line"
    )
    hint = (
        "narrow the exception type, re-raise, or append "
        "'# noqa: BLE001 - <reason>' explaining why swallowing is safe"
    )

    _NOQA = re.compile(r"#\s*noqa:\s*BLE001\b\s*[-:]?\s*(.*)$")

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            name = node.attr if isinstance(node, ast.Attribute) else None
            if isinstance(node, ast.Name):
                name = node.id
            if name in ("Exception", "BaseException"):
                return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        lines = ctx.source.splitlines()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node):
                continue
            # A handler that re-raises isn't silent: the error escapes.
            if any(
                isinstance(sub, ast.Raise)
                for sub in _walk_own_code(node.body)
            ):
                continue
            line = lines[node.lineno - 1] if node.lineno <= len(lines) else ""
            match = self._NOQA.search(line)
            if match is None or not match.group(1).strip():
                yield ctx.finding(
                    self,
                    node,
                    "broad except swallows errors without a written reason",
                )
