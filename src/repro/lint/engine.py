"""The rule engine: parse once, walk with context, enforce waivers.

One :class:`ModuleContext` is built per file — the parsed tree, a
parent map for lexical-ancestry questions ("is this mutation inside a
``with self._lock`` block?"), and an import-alias table so rules match
canonical dotted names (``np.random.default_rng`` and
``from numpy.random import default_rng`` resolve identically).  Rules
are small classes registered by id; :func:`lint_source` runs the
enabled set, drops findings covered by a ``lint-ok`` waiver, and emits
engine-level findings of its own:

* ``parse-error`` — the file does not parse; never suppressible.
* ``bad-suppression`` — a waiver with no reason, or naming a rule id
  that is not in the registry; never suppressible (a waiver cannot
  waive the rules about waivers).

Findings come back sorted by ``(path, line, col, rule id)`` so reports
are byte-stable across runs.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator

from .config import DEFAULT_CONFIG, LintConfig, module_matches
from .findings import Finding
from .suppress import scan_suppressions

#: Finding ids the engine itself owns (not suppressible, always on).
PARSE_ERROR = "parse-error"
BAD_SUPPRESSION = "bad-suppression"
ENGINE_RULE_IDS = (BAD_SUPPRESSION, PARSE_ERROR)

#: rule id -> rule class, populated by :func:`register_rule`.
RULES: dict[str, type["LintRule"]] = {}


def register_rule(cls: type["LintRule"]) -> type["LintRule"]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must define rule_id")
    if cls.rule_id in RULES or cls.rule_id in ENGINE_RULE_IDS:
        raise ValueError(f"duplicate rule id: {cls.rule_id}")
    RULES[cls.rule_id] = cls
    return cls


def all_rule_ids() -> tuple[str, ...]:
    """Every valid rule id: registered rules plus engine-level ids."""
    return tuple(sorted(set(RULES) | set(ENGINE_RULE_IDS)))


class ModuleContext:
    """One linted module: tree, parents, imports, scoping answers.

    Attributes:
        path: the file's path as handed to the linter (posix-rendered).
        source: full module text.
        tree: the parsed :class:`ast.Module`.
        config: the active :class:`LintConfig` scoping.
    """

    def __init__(
        self, path: str, source: str, tree: ast.Module, config: LintConfig
    ):
        self.path = path
        self.source = source
        self.tree = tree
        self.config = config
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._aliases = self._collect_aliases(tree)

    @staticmethod
    def _collect_aliases(tree: ast.Module) -> dict[str, str]:
        """name-in-scope -> canonical dotted path, from every import."""
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        aliases[head] = head
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    bound = alias.asname or alias.name
                    aliases[bound] = f"{node.module}.{alias.name}"
        return aliases

    def parent(self, node: ast.AST) -> ast.AST | None:
        """Lexical parent of ``node`` (None for the module itself)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST):
        """Nearest enclosing function/async-function def, or None."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def dotted_name(self, node: ast.AST) -> str | None:
        """``a.b.c`` for a Name/Attribute chain, else None."""
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        return ".".join(reversed(parts))

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name with the leading import alias canonicalised.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the
        module did ``import numpy as np``; a ``from`` import resolves a
        bare name to its full path.  Unresolvable heads come back
        verbatim so rules can still match on suffixes.
        """
        dotted = self.dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self._aliases.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def matches(self, patterns: tuple[str, ...]) -> bool:
        """True when this module's path falls in a config scope."""
        return module_matches(self.path, patterns)

    def in_with_lock(self, node: ast.AST, lock_attr: str) -> bool:
        """True when ``node`` sits lexically inside ``with self.<lock>``.

        Any ``self.*`` attribute ending in ``lock_attr``'s suffix
        qualifies (``self._lock``, ``self._tier_lock``), so helper
        tiers with their own locks satisfy the contract.
        """
        for ancestor in self.ancestors(node):
            if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
                continue
            for item in ancestor.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                dotted = self.dotted_name(expr)
                if dotted is None:
                    continue
                if dotted.startswith("self.") and dotted.endswith(lock_attr):
                    return True
        return False

    def finding(
        self,
        rule: "LintRule",
        node: ast.AST,
        message: str,
        hint: str | None = None,
    ) -> Finding:
        """Anchor a finding for ``rule`` at ``node``'s location."""
        return Finding(
            rule_id=rule.rule_id,
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            hint=rule.hint if hint is None else hint,
        )


class LintRule:
    """Base rule: subclass, set the class attributes, implement check.

    Attributes:
        rule_id: registry id (kebab-case, shown in findings/waivers).
        description: one-line statement of the guarded invariant.
        hint: default fix hint attached to this rule's findings.
    """

    rule_id = ""
    description = ""
    hint = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for this module (empty when out of scope)."""
        raise NotImplementedError
        yield  # pragma: no cover


def lint_source(
    source: str,
    path: str,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one module's text; returns findings sorted for reporting.

    ``rules`` filters the registered rules by id (engine findings —
    parse errors, malformed waivers — are always emitted: they gate
    whether the file was honestly checked at all).
    """
    posix = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR,
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                message=f"file does not parse: {exc.msg}",
                hint="fix the syntax error; parse failures always gate",
            )
        ]

    enabled = set(RULES) if rules is None else set(rules) & set(RULES)
    ctx = ModuleContext(posix, source, tree, config)
    raw: list[Finding] = []
    for rule_id in sorted(enabled):
        raw.extend(RULES[rule_id]().check(ctx))

    index = scan_suppressions(source)
    findings = [
        finding
        for finding in raw
        if not index.covers(finding.rule_id, finding.line)
    ]

    known = set(all_rule_ids())
    for suppression in index.suppressions:
        problems = []
        if not suppression.rule_ids:
            problems.append("names no rule id")
        unknown = [rule for rule in suppression.rule_ids if rule not in known]
        if unknown:
            problems.append(f"names unknown rule(s): {', '.join(unknown)}")
        if not suppression.reason:
            problems.append("carries no reason")
        if problems:
            findings.append(
                Finding(
                    rule_id=BAD_SUPPRESSION,
                    path=posix,
                    line=suppression.line,
                    col=suppression.col,
                    message="malformed waiver: " + "; ".join(problems),
                    hint="write '# repro: lint-ok[rule-id] reason' with a "
                    "registered rule id and a justification",
                )
            )

    return sorted(findings, key=Finding.sort_key)


def lint_file(
    path: str | Path,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one file from disk (unreadable files are parse errors too)."""
    posix = Path(path).as_posix()
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        return [
            Finding(
                rule_id=PARSE_ERROR,
                path=posix,
                line=1,
                col=1,
                message=f"cannot read file: {exc}",
                hint="the lint run must see every module it claims to gate",
            )
        ]
    return lint_source(source, posix, config=config, rules=rules)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  Sorting (posix order) fixes the walk
    order so reports never depend on filesystem enumeration.
    """
    out: list[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            out.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not any(
                    part.startswith(".") or part == "__pycache__"
                    for part in candidate.parts
                )
            )
        else:
            out.append(path)
    return sorted(set(out), key=lambda p: p.as_posix())


def lint_paths(
    paths: Iterable[str | Path],
    config: LintConfig = DEFAULT_CONFIG,
    rules: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files and/or directory trees; findings in report order."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, config=config, rules=rules))
    return sorted(findings, key=Finding.sort_key)
