"""Lint scoping: which modules each repo-specific rule patrols.

Most rules are global (``seeded-rng`` applies to every linted file), but
several invariants are contracts of *specific* modules: report payloads
must be wall-clock-free, the cache/store tiers must mutate shared state
under their lock, ``ml/layers.py`` inference must stay on fixed-order
einsum.  :class:`LintConfig` carries those scopes as ``fnmatch``
patterns over posix paths, so the test-suite can point the same rules
at fixture files instead of the real tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import PurePath


def module_matches(path: str, patterns: tuple[str, ...]) -> bool:
    """True when ``path`` (posix-normalised) matches any glob pattern."""
    posix = PurePath(path).as_posix()
    return any(fnmatch(posix, pattern) for pattern in patterns)


@dataclass(frozen=True)
class LockScope:
    """One lock-discipline contract: tracked attributes in a module.

    Attributes:
        pattern: glob selecting the module(s) the contract covers.
        attrs: ``self.<attr>`` names that may only mutate under the lock.
        lock_attr: the lock the mutation must be lexically inside
            (``with self.<lock_attr>:``), unless the enclosing method is
            ``__init__`` or carries the ``*_locked`` naming convention.
    """

    pattern: str
    attrs: tuple[str, ...]
    lock_attr: str = "_lock"


@dataclass(frozen=True)
class LintConfig:
    """Per-rule module scopes (fnmatch globs over posix paths).

    Attributes:
        payload_modules: report/ledger/spec payload modules that must not
            reach wall-clock sources (``no-wallclock``).
        lock_scopes: lock-discipline contracts (``lock-discipline``).
        matmul_modules: inference kernels restricted to fixed-order
            einsum (``no-bare-matmul-in-inference``).
        workunit_modules: modules whose dataclasses cross process
            boundaries and must stay picklable (``picklable-workunits``).
    """

    payload_modules: tuple[str, ...] = (
        "*/repro/core/config.py",
        "*/repro/core/report.py",
        "*/repro/stream/ledger.py",
        "*/repro/experiments/report.py",
        "*/repro/experiments/sweep.py",
        "*/repro/service/spec.py",
        "*/repro/server/protocol.py",
        "*/repro/faults/plan.py",
    )
    lock_scopes: tuple[LockScope, ...] = (
        LockScope("*/repro/service/cache.py", ("_entries", "_sizes")),
        LockScope("*/repro/store/artifact.py", ("_index", "_clock", "_inflight")),
    )
    matmul_modules: tuple[str, ...] = ("*/repro/ml/layers.py",)
    workunit_modules: tuple[str, ...] = (
        "*/repro/service/spec.py",
        "*/repro/service/executor.py",
        "*/repro/store/shm.py",
    )

    def lock_scope_for(self, path: str) -> LockScope | None:
        """The lock contract covering ``path``, if any."""
        for scope in self.lock_scopes:
            if module_matches(path, (scope.pattern,)):
                return scope
        return None


#: The repository's own contracts — what CI lints ``src benchmarks
#: tools`` with.
DEFAULT_CONFIG = LintConfig()
