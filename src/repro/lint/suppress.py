"""Inline suppressions: ``# repro: lint-ok[rule-id] reason``.

A suppression silences one rule on the line it sits on, or on the line
directly below it (so it can ride above a long statement).  The reason
is **mandatory** — a suppression is a signed waiver, and the engine
turns a reasonless or unknown-rule waiver into a ``bad-suppression``
finding rather than honouring it.  Multiple rules may share one comment
as a comma-separated list: ``# repro: lint-ok[rule-a, rule-b] why``.

Comments are found with :mod:`tokenize` (not a line regex) so that a
string literal containing the marker text never registers as a waiver.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

#: The waiver marker, anchored inside a comment token.
_PATTERN = re.compile(r"#\s*repro:\s*lint-ok\[([^\]]*)\]\s*(.*)\s*$")


@dataclass(frozen=True)
class Suppression:
    """One parsed waiver comment.

    Attributes:
        line: 1-based line the comment sits on.
        col: 1-based column of the comment.
        rule_ids: rules the waiver names (may be empty if malformed).
        reason: justification text after the bracket (may be empty).
    """

    line: int
    col: int
    rule_ids: tuple[str, ...]
    reason: str


@dataclass
class SuppressionIndex:
    """All waivers in one module, addressable by line.

    Attributes:
        suppressions: every parsed waiver, in source order.
    """

    suppressions: list[Suppression] = field(default_factory=list)

    def covers(self, rule_id: str, line: int) -> bool:
        """True when a waiver for ``rule_id`` sits on ``line`` or above it."""
        for suppression in self.suppressions:
            if rule_id in suppression.rule_ids and suppression.line in (
                line,
                line - 1,
            ):
                return True
        return False


def scan_suppressions(source: str) -> SuppressionIndex:
    """Parse every ``lint-ok`` waiver comment out of ``source``.

    Tokenisation errors are swallowed: the engine only scans files that
    already parsed with :func:`ast.parse`, so a failure here means no
    comments, not a broken file.
    """
    index = SuppressionIndex()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            token for token in tokens if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenizeError, SyntaxError, ValueError):
        return index
    for token in comments:
        match = _PATTERN.search(token.string)
        if match is None:
            continue
        rule_ids = tuple(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        index.suppressions.append(
            Suppression(
                line=token.start[0],
                col=token.start[1] + 1,
                rule_ids=rule_ids,
                reason=match.group(2).strip(),
            )
        )
    return index
