"""Findings: what a lint rule reports, and the two render formats.

A :class:`Finding` pins an invariant violation to ``path:line:col``,
names the rule that raised it, and carries a fix hint so the console
output teaches the contract instead of merely citing it.  Ordering is
total and content-derived — ``(path, line, col, rule_id, message)`` —
which is what makes ``--format json`` byte-stable across runs: the
report is a pure function of the tree being linted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Schema version stamped into JSON reports.
REPORT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One invariant violation at a specific source location.

    Attributes:
        rule_id: registry id of the rule that fired (e.g. ``seeded-rng``).
        path: file the finding lives in, as passed to the linter.
        line: 1-based source line.
        col: 1-based source column.
        message: what is wrong, in one sentence.
        hint: how to fix or legitimately suppress it.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def sort_key(self) -> tuple:
        """Deterministic report order: path, then line, col, rule, text."""
        return (self.path, self.line, self.col, self.rule_id, self.message)

    def to_dict(self) -> dict:
        """Plain-data form for the JSON report (keys always present)."""
        return {
            "rule_id": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        """Rebuild a finding from its JSON form (exact round-trip)."""
        return cls(
            rule_id=data["rule_id"],
            path=data["path"],
            line=data["line"],
            col=data["col"],
            message=data["message"],
            hint=data.get("hint", ""),
        )

    def format(self) -> str:
        """One console line: ``path:line:col: [rule] message (fix: hint)``."""
        text = f"{self.path}:{self.line}:{self.col}: [{self.rule_id}] {self.message}"
        if self.hint:
            text += f" (fix: {self.hint})"
        return text


def render_text(findings: list[Finding]) -> str:
    """Console report: one line per finding plus a count trailer."""
    lines = [finding.format() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"{len(findings)} {noun}")
    return "\n".join(lines) + "\n"


def render_json(findings: list[Finding]) -> str:
    """Machine report: sorted keys, fixed field set, trailing newline.

    Byte-stable across runs by construction — the payload contains no
    wall-clock, no environment, and the findings arrive pre-sorted by
    :meth:`Finding.sort_key`.
    """
    payload = {
        "version": REPORT_VERSION,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
