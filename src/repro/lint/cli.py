"""The ``repro lint`` entry point (thin shell around the engine).

Exit codes follow the usual linter convention: 0 clean, 1 findings,
2 usage error (unknown rule id, missing path).  The JSON report is
byte-stable across runs — findings arrive sorted by (path, line, col,
rule id) and the payload carries no wall-clock — so CI can archive it
as an artifact and diff runs directly.
"""

from __future__ import annotations

import sys
from pathlib import Path

from .config import DEFAULT_CONFIG
from .engine import all_rule_ids, lint_paths
from .findings import render_json, render_text

#: What CI gates on when no paths are given.
DEFAULT_PATHS = ("src", "benchmarks", "tools")


def run(
    paths: list[str] | None = None,
    fmt: str = "text",
    rules: list[str] | None = None,
    out: str | None = None,
) -> int:
    """Lint ``paths`` (default: the CI set) and report; returns exit code."""
    targets = list(paths) if paths else list(DEFAULT_PATHS)
    missing = [target for target in targets if not Path(target).exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    if rules:
        known = set(all_rule_ids())
        unknown = sorted(set(rules) - known)
        if unknown:
            print(
                f"repro lint: unknown rule(s): {', '.join(unknown)}\n"
                f"known rules: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2

    findings = lint_paths(targets, config=DEFAULT_CONFIG, rules=rules)

    if out is not None:
        Path(out).write_text(render_json(findings), encoding="utf-8")
    report = render_json(findings) if fmt == "json" else render_text(findings)
    sys.stdout.write(report)
    return 1 if findings else 0
