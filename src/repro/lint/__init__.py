"""``repro.lint`` — the repo's invariants as an AST-based linter.

Seven PRs of growth rest on contracts that used to live only in prose:
every RNG seeded, report payloads wall-clock-free, components
registered at import time, cache state mutated under the tier lock,
inference on fixed-order einsum, work units picklable, broad excepts
justified.  This package makes them machine-checkable::

    from repro.lint import lint_paths, render_json
    findings = lint_paths(["src", "benchmarks", "tools"])

or from the console: ``repro lint [paths] [--format text|json]``
(exit code 1 on findings).  Suppress a deliberate exception inline
with ``# repro: lint-ok[rule-id] reason`` — the reason is mandatory.
"""

from .config import DEFAULT_CONFIG, LintConfig, LockScope
from .engine import (
    ENGINE_RULE_IDS,
    RULES,
    LintRule,
    ModuleContext,
    all_rule_ids,
    lint_file,
    lint_paths,
    lint_source,
    register_rule,
)
from .findings import Finding, render_json, render_text
from .suppress import Suppression, SuppressionIndex, scan_suppressions

# Importing the rules module registers every built-in rule.
from . import rules as _rules  # noqa: F401  (import-time registration)

__all__ = [
    "DEFAULT_CONFIG",
    "ENGINE_RULE_IDS",
    "Finding",
    "LintConfig",
    "LintRule",
    "LockScope",
    "ModuleContext",
    "RULES",
    "Suppression",
    "SuppressionIndex",
    "all_rule_ids",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register_rule",
    "render_json",
    "render_text",
    "scan_suppressions",
]
